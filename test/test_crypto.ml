(* Unit and property tests for the vegvisir_crypto substrate. *)

open Vegvisir_crypto

let hex = Hex.encode
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Hex                                                                  *)

let hex_basics () =
  check_s "encode" "00ff10ab" (Hex.encode "\x00\xff\x10\xab");
  check_s "decode" "\x00\xff\x10\xab" (Hex.decode "00ff10ab");
  check_s "decode upper" "\xde\xad" (Hex.decode "DEAD");
  check_b "is_hex yes" true (Hex.is_hex "00aaBB");
  check_b "is_hex odd" false (Hex.is_hex "abc");
  check_b "is_hex bad char" false (Hex.is_hex "zz");
  Alcotest.check_raises "decode odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"));
  check_s "empty" "" (Hex.encode "");
  check_s "empty decode" "" (Hex.decode "")

(* ------------------------------------------------------------------ *)
(* SHA-256                                                              *)

let sha_vectors () =
  check_s "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest ""));
  check_s "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.digest "abc"));
  check_s "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check_s "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (hex
       (Sha256.digest
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
           ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))

let sha_long () =
  (* 10^6 'a' characters (FIPS vector), fed in uneven chunks. *)
  let ctx = Sha256.init () in
  let chunk = String.make 997 'a' in
  let fed = ref 0 in
  while !fed + 997 <= 1_000_000 do
    Sha256.feed ctx chunk;
    fed := !fed + 997
  done;
  Sha256.feed ctx (String.make (1_000_000 - !fed) 'a');
  check_s "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.finalize ctx))

let sha_incremental () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let one_shot = Sha256.digest data in
  List.iter
    (fun cut ->
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub data 0 cut);
      Sha256.feed ctx (String.sub data cut (String.length data - cut));
      check_s (Printf.sprintf "split at %d" cut) (hex one_shot)
        (hex (Sha256.finalize ctx)))
    [ 0; 1; 63; 64; 65; 127; 128; 555; 1000 ]

let sha_digest_list () =
  check_s "concat equivalence"
    (hex (Sha256.digest "foobarbaz"))
    (hex (Sha256.digest_list [ "foo"; "bar"; "baz" ]))

let hmac_vectors () =
  (* RFC 4231 test case 1 *)
  check_s "rfc4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  (* RFC 4231 test case 2 *)
  check_s "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  (* Long key (> block size) must be hashed first. *)
  let long_key = String.make 131 '\xaa' in
  check_s "rfc4231 #6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Sha256.hmac ~key:long_key
          "Test Using Larger Than Block-Size Key - Hash Key First"))

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)

let rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done;
  let c = Rng.create 43L in
  check_b "different seed differs" true (Rng.int64 a <> Rng.int64 c)

let rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check_b "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check_b "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let rng_bytes_and_pick () =
  let rng = Rng.create 1L in
  check_i "bytes length" 33 (String.length (Rng.bytes rng 33));
  check_i "bytes empty" 0 (String.length (Rng.bytes rng 0));
  let l = [ 1; 2; 3; 4 ] in
  for _ = 1 to 50 do
    check_b "pick member" true (List.mem (Rng.pick rng l) l)
  done;
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []));
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is permutation" (Array.init 50 Fun.id) sorted

let rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.int64 parent) in
  let ys = List.init 10 (fun _ -> Rng.int64 child) in
  check_b "streams differ" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Merkle                                                               *)

let merkle_basics () =
  let leaves = [ "a"; "b"; "c"; "d"; "e" ] in
  let t = Merkle.build leaves in
  check_i "size" 5 (Merkle.size t);
  List.iteri
    (fun i leaf ->
      let p = Merkle.path t i in
      check_b (Printf.sprintf "path %d verifies" i) true
        (Merkle.verify_path ~root:(Merkle.root t) ~leaf p);
      check_b (Printf.sprintf "path %d wrong leaf" i) false
        (Merkle.verify_path ~root:(Merkle.root t) ~leaf:"z" p))
    leaves;
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves")
    (fun () -> ignore (Merkle.build []));
  Alcotest.check_raises "path out of range"
    (Invalid_argument "Merkle.path: leaf out of range") (fun () ->
      ignore (Merkle.path t 5))

let merkle_single_leaf () =
  let t = Merkle.build [ "only" ] in
  check_b "single leaf path" true
    (Merkle.verify_path ~root:(Merkle.root t) ~leaf:"only" (Merkle.path t 0));
  check_b "leaf/root distinct from raw hash" true
    (Merkle.root t <> Sha256.digest "only")

let merkle_root_changes () =
  let r1 = Merkle.root (Merkle.build [ "a"; "b" ]) in
  let r2 = Merkle.root (Merkle.build [ "a"; "c" ]) in
  let r3 = Merkle.root (Merkle.build [ "b"; "a" ]) in
  check_b "leaf change changes root" true (r1 <> r2);
  check_b "order matters" true (r1 <> r3)

(* ------------------------------------------------------------------ *)
(* Lamport                                                              *)

let lamport_roundtrip () =
  let rng = Rng.create 11L in
  let sk, pk = Lamport.generate rng in
  check_s "pk derivable" (hex pk) (hex (Lamport.public_of_secret sk));
  let s = Lamport.sign sk "message" in
  check_b "verifies" true (Lamport.verify pk "message" s);
  check_b "other message fails" false (Lamport.verify pk "messagf" s);
  let _, pk2 = Lamport.generate rng in
  check_b "other key fails" false (Lamport.verify pk2 "message" s)

let lamport_serialization () =
  let rng = Rng.create 12L in
  let sk, pk = Lamport.generate rng in
  let s = Lamport.sign sk "hello" in
  let raw = Lamport.signature_to_string s in
  check_i "size" Lamport.signature_size (String.length raw);
  (match Lamport.signature_of_string raw with
  | Some s2 -> check_b "roundtrip verifies" true (Lamport.verify pk "hello" s2)
  | None -> Alcotest.fail "decode failed");
  check_b "truncated rejected" true
    (Lamport.signature_of_string (String.sub raw 0 100) = None)

(* ------------------------------------------------------------------ *)
(* W-OTS                                                                *)

let wots_params () =
  let p = Wots.params () in
  check_i "default len1" 64 p.Wots.len1;
  check_i "default chain_max" 15 p.Wots.chain_max;
  check_b "len2 covers checksum" true (p.Wots.len2 >= 3);
  Alcotest.check_raises "bad chunk bits"
    (Invalid_argument "Wots.params: chunk_bits must be in 1..8") (fun () ->
      ignore (Wots.params ~chunk_bits:0 ()))

let wots_roundtrip_all_widths () =
  List.iter
    (fun chunk_bits ->
      let p = Wots.params ~chunk_bits () in
      let rng = Rng.create (Int64.of_int (100 + chunk_bits)) in
      let sk, pk = Wots.generate p rng in
      let s = Wots.sign sk "payload" in
      check_b (Printf.sprintf "w=%d verifies" chunk_bits) true
        (Wots.verify p pk "payload" s);
      check_b (Printf.sprintf "w=%d rejects other msg" chunk_bits) false
        (Wots.verify p pk "payloae" s))
    [ 1; 2; 4; 8 ]

let wots_deterministic_derive () =
  let p = Wots.params () in
  let _, pk1 = Wots.derive p ~seed:"fixed-seed" in
  let _, pk2 = Wots.derive p ~seed:"fixed-seed" in
  let _, pk3 = Wots.derive p ~seed:"other-seed" in
  check_s "same seed same key" (hex pk1) (hex pk2);
  check_b "different seed different key" true (pk1 <> pk3)

let wots_serialization () =
  let p = Wots.params () in
  let sk, pk = Wots.derive p ~seed:"ser" in
  let s = Wots.sign sk "x" in
  let raw = Wots.signature_to_string s in
  check_i "size" (Wots.signature_size p) (String.length raw);
  (match Wots.signature_of_string p raw with
  | Some s2 -> check_b "roundtrip verifies" true (Wots.verify p pk "x" s2)
  | None -> Alcotest.fail "decode failed");
  check_b "wrong length rejected" true
    (Wots.signature_of_string p (raw ^ "x") = None)

let wots_tamper () =
  let p = Wots.params () in
  let sk, pk = Wots.derive p ~seed:"tamper" in
  let s = Wots.sign sk "msg" in
  let raw = Bytes.of_string (Wots.signature_to_string s) in
  Bytes.set raw 40 (Char.chr (Char.code (Bytes.get raw 40) lxor 1));
  match Wots.signature_of_string p (Bytes.to_string raw) with
  | Some s2 -> check_b "tampered fails" false (Wots.verify p pk "msg" s2)
  | None -> Alcotest.fail "decode failed"

(* ------------------------------------------------------------------ *)
(* MSS                                                                  *)

let mss_roundtrip () =
  let sk, pk = Mss.generate ~height:3 ~seed:"mss-seed" () in
  check_i "capacity" 8 (Mss.capacity sk);
  check_s "public derivable" (hex pk) (hex (Mss.public_of_secret sk));
  for i = 1 to 8 do
    let msg = "message-" ^ string_of_int i in
    let s = Mss.sign sk msg in
    check_b (Printf.sprintf "sig %d verifies" i) true (Mss.verify pk msg s);
    check_b (Printf.sprintf "sig %d rejects" i) false (Mss.verify pk "other" s);
    check_i "remaining" (8 - i) (Mss.remaining sk)
  done;
  Alcotest.check_raises "exhausted" Mss.Exhausted (fun () ->
      ignore (Mss.sign sk "one too many"))

let mss_serialization () =
  let sk, pk = Mss.generate ~height:4 ~seed:"mss-ser" () in
  let s = Mss.sign sk "block" in
  let raw = Mss.signature_to_string s in
  check_i "predicted size" (Mss.signature_size ~height:4 ()) (String.length raw);
  (match Mss.signature_of_string raw with
  | Some s2 -> check_b "roundtrip verifies" true (Mss.verify pk "block" s2)
  | None -> Alcotest.fail "decode failed");
  check_b "garbage rejected" true (Mss.signature_of_string "short" = None)

let mss_cross_key () =
  let sk1, _pk1 = Mss.generate ~height:2 ~seed:"k1" () in
  let _sk2, pk2 = Mss.generate ~height:2 ~seed:"k2" () in
  let s = Mss.sign sk1 "msg" in
  check_b "cross-key rejected" false (Mss.verify pk2 "msg" s)

let mss_height_zero () =
  let sk, pk = Mss.generate ~height:0 ~seed:"tiny" () in
  check_i "capacity 1" 1 (Mss.capacity sk);
  let s = Mss.sign sk "only" in
  check_b "verifies" true (Mss.verify pk "only" s);
  Alcotest.check_raises "exhausted after 1" Mss.Exhausted (fun () ->
      ignore (Mss.sign sk "again"))

(* ------------------------------------------------------------------ *)
(* Sealed box                                                           *)

let sealed_box_roundtrip () =
  let key = Sha256.digest "key" in
  let box = Sealed_box.encrypt ~key ~nonce:"nonce-1" "attack at dawn" in
  check_i "overhead"
    (String.length "attack at dawn" + Sealed_box.overhead)
    (String.length box);
  (match Sealed_box.decrypt ~key box with
  | Some pt -> check_s "roundtrip" "attack at dawn" pt
  | None -> Alcotest.fail "decrypt failed");
  check_b "wrong key fails" true
    (Sealed_box.decrypt ~key:(Sha256.digest "other") box = None)

let sealed_box_tamper () =
  let key = Sha256.digest "key" in
  let box = Sealed_box.encrypt ~key ~nonce:"n" "plaintext" in
  let tampered = Bytes.of_string box in
  Bytes.set tampered 18 (Char.chr (Char.code (Bytes.get tampered 18) lxor 1));
  check_b "tampered rejected" true
    (Sealed_box.decrypt ~key (Bytes.to_string tampered) = None);
  check_b "truncated rejected" true (Sealed_box.decrypt ~key "tiny" = None)

let sealed_box_empty_and_long () =
  let key = Sha256.digest "key" in
  (match Sealed_box.decrypt ~key (Sealed_box.encrypt ~key ~nonce:"n" "") with
  | Some "" -> ()
  | _ -> Alcotest.fail "empty roundtrip");
  let long = String.make 10_000 'q' in
  match Sealed_box.decrypt ~key (Sealed_box.encrypt ~key ~nonce:"n2" long) with
  | Some pt -> check_b "long roundtrip" true (String.equal pt long)
  | None -> Alcotest.fail "long roundtrip failed"

(* ------------------------------------------------------------------ *)
(* Bloom                                                                *)

let bloom_basics () =
  let b = Bloom.create ~expected:100 ~fp_rate:0.01 in
  let members = List.init 100 (fun i -> Printf.sprintf "member-%d" i) in
  List.iter (Bloom.add b) members;
  (* No false negatives, ever. *)
  List.iter (fun m -> check_b m true (Bloom.mem b m)) members;
  (* False positives stay near the configured rate. *)
  let fps = ref 0 in
  for i = 0 to 9_999 do
    if Bloom.mem b (Printf.sprintf "absent-%d" i) then incr fps
  done;
  check_b (Printf.sprintf "fp rate %.4f < 0.03" (float_of_int !fps /. 10_000.))
    true
    (float_of_int !fps /. 10_000. < 0.03);
  check_b "k >= 1" true (Bloom.hash_count b >= 1);
  Alcotest.check_raises "bad expected"
    (Invalid_argument "Bloom.create: expected must be positive") (fun () ->
      ignore (Bloom.create ~expected:0 ~fp_rate:0.01))

let bloom_serialization () =
  let b = Bloom.create ~expected:50 ~fp_rate:0.02 in
  List.iter (Bloom.add b) [ "x"; "y"; "z" ];
  (match Bloom.of_string (Bloom.to_string b) with
  | Some b' ->
    check_b "membership preserved" true
      (Bloom.mem b' "x" && Bloom.mem b' "y" && Bloom.mem b' "z");
    check_i "byte size matches" (Bloom.byte_size b) (String.length (Bloom.to_string b))
  | None -> Alcotest.fail "bloom roundtrip");
  check_b "garbage rejected" true (Bloom.of_string "ab" = None)

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hex roundtrip" ~count:200
      (string_of_size Gen.(0 -- 64))
      (fun s -> String.equal (Hex.decode (Hex.encode s)) s);
    Test.make ~name:"sha256 incremental = one-shot" ~count:100
      (pair (string_of_size Gen.(0 -- 300)) (string_of_size Gen.(0 -- 300)))
      (fun (a, b) ->
        let ctx = Sha256.init () in
        Sha256.feed ctx a;
        Sha256.feed ctx b;
        String.equal (Sha256.finalize ctx) (Sha256.digest (a ^ b)));
    Test.make ~name:"merkle path verifies for every leaf" ~count:60
      (list_of_size Gen.(1 -- 33) (string_of_size Gen.(0 -- 8)))
      (fun leaves ->
        let t = Merkle.build leaves in
        List.for_all
          (fun i ->
            Merkle.verify_path ~root:(Merkle.root t) ~leaf:(List.nth leaves i)
              (Merkle.path t i))
          (List.init (List.length leaves) Fun.id));
    Test.make ~name:"wots verifies arbitrary messages" ~count:25
      (string_of_size Gen.(0 -- 100))
      (fun msg ->
        let p = Wots.params () in
        let sk, pk = Wots.derive p ~seed:"prop" in
        Wots.verify p pk msg (Wots.sign sk msg));
    Test.make ~name:"sealed box roundtrips" ~count:60
      (pair (string_of_size Gen.(0 -- 200)) (string_of_size Gen.(0 -- 20)))
      (fun (pt, nonce) ->
        let key = Sha256.digest "prop-key" in
        match Sealed_box.decrypt ~key (Sealed_box.encrypt ~key ~nonce pt) with
        | Some pt' -> String.equal pt pt'
        | None -> false);
    Test.make ~name:"bloom has no false negatives" ~count:50
      (list_of_size Gen.(0 -- 60) (string_of_size Gen.(1 -- 16)))
      (fun elems ->
        let b = Bloom.create ~expected:(max 1 (List.length elems)) ~fp_rate:0.01 in
        List.iter (Bloom.add b) elems;
        List.for_all (Bloom.mem b) elems);
    Test.make ~name:"rng int respects bound" ~count:200
      (pair int64 (int_range 1 1_000_000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
  ]

let () =
  Alcotest.run "crypto"
    [
      ("hex", [ Alcotest.test_case "basics" `Quick hex_basics ]);
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick sha_vectors;
          Alcotest.test_case "million a" `Slow sha_long;
          Alcotest.test_case "incremental splits" `Quick sha_incremental;
          Alcotest.test_case "digest_list" `Quick sha_digest_list;
          Alcotest.test_case "HMAC RFC 4231" `Quick hmac_vectors;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick rng_determinism;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "bytes/pick/shuffle" `Quick rng_bytes_and_pick;
          Alcotest.test_case "split" `Quick rng_split_independent;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "paths" `Quick merkle_basics;
          Alcotest.test_case "single leaf" `Quick merkle_single_leaf;
          Alcotest.test_case "root sensitivity" `Quick merkle_root_changes;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "roundtrip" `Quick lamport_roundtrip;
          Alcotest.test_case "serialization" `Quick lamport_serialization;
        ] );
      ( "wots",
        [
          Alcotest.test_case "params" `Quick wots_params;
          Alcotest.test_case "all widths" `Quick wots_roundtrip_all_widths;
          Alcotest.test_case "deterministic derive" `Quick wots_deterministic_derive;
          Alcotest.test_case "serialization" `Quick wots_serialization;
          Alcotest.test_case "tamper" `Quick wots_tamper;
        ] );
      ( "mss",
        [
          Alcotest.test_case "roundtrip + exhaustion" `Quick mss_roundtrip;
          Alcotest.test_case "serialization" `Quick mss_serialization;
          Alcotest.test_case "cross-key" `Quick mss_cross_key;
          Alcotest.test_case "height zero" `Quick mss_height_zero;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "basics" `Quick bloom_basics;
          Alcotest.test_case "serialization" `Quick bloom_serialization;
        ] );
      ( "sealed-box",
        [
          Alcotest.test_case "roundtrip" `Quick sealed_box_roundtrip;
          Alcotest.test_case "tamper" `Quick sealed_box_tamper;
          Alcotest.test_case "empty and long" `Quick sealed_box_empty_and_long;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
