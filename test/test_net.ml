(* Unit tests for the network simulator: event queue, energy, topology,
   links, metrics, engine, and the gossip agent's adversary handling. *)

open Vegvisir_net
module V = Vegvisir
module Rng = Vegvisir_crypto.Rng

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Event queue                                                          *)

let queue_ordering () =
  let q = Event_queue.create () in
  check_b "empty" true (Event_queue.is_empty q);
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  check_i "size" 3 (Event_queue.size q);
  check_b "peek" true (Event_queue.peek_time q = Some 1.0);
  Alcotest.(check (list string))
    "sorted pop" [ "a"; "b"; "c" ]
    (List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))));
  check_b "drained" true (Event_queue.pop q = None)

let queue_tie_break_fifo () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:5.0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let queue_nan_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let queue_random_sorted () =
  let rng = Rng.create 9L in
  let q = Event_queue.create () in
  for i = 0 to 999 do
    Event_queue.push q ~time:(Rng.float rng *. 100.) i
  done;
  let rec drain last n =
    match Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
      check_b "non-decreasing" true (t >= last);
      drain t (n + 1)
  in
  check_i "all drained" 1000 (drain neg_infinity 0)

(* ------------------------------------------------------------------ *)
(* Energy                                                               *)

let energy_accounting () =
  let m = Energy.meter () in
  m.Energy.tx_bytes <- 100;
  m.Energy.hashes <- 10;
  let c = Energy.default_costs in
  let expected = (100. *. c.Energy.tx_per_byte) +. (10. *. c.Energy.per_hash) in
  Alcotest.(check (float 1e-9)) "total" expected (Energy.total c m);
  let m2 = Energy.meter () in
  m2.Energy.tx_bytes <- 50;
  Energy.add m m2;
  check_i "accumulate" 150 m.Energy.tx_bytes;
  Energy.reset m;
  check_i "reset" 0 m.Energy.tx_bytes

(* ------------------------------------------------------------------ *)
(* Topology                                                             *)

let topology_geometry () =
  let t = Topology.line ~n:4 ~spacing:10. ~range:12. in
  check_b "adjacent in range" true (Topology.connected t 0 1);
  check_b "two hops out of range" false (Topology.connected t 0 2);
  check_b "self not connected" false (Topology.connected t 1 1);
  Alcotest.(check (list int)) "middle neighbors" [ 0; 2 ] (Topology.neighbors t 1);
  check_i "one component" 1 (List.length (Topology.components t));
  Topology.move t 3 (1000., 1000.);
  check_i "moved node isolated" 2 (List.length (Topology.components t))

let topology_partitions () =
  let t = Topology.clique ~n:6 in
  check_i "clique connected" 1 (List.length (Topology.components t));
  Topology.set_partition t (Some [| 0; 0; 0; 1; 1; 1 |]);
  check_b "cross-group blocked" false (Topology.connected t 0 3);
  check_b "in-group allowed" true (Topology.connected t 0 1);
  check_i "two components" 2 (List.length (Topology.components t));
  check_b "partition_of" true (Topology.partition_of t 4 = Some 1);
  Topology.set_partition t None;
  check_i "healed" 1 (List.length (Topology.components t));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Topology.set_partition: group array size mismatch")
    (fun () -> Topology.set_partition t (Some [| 0 |]))

let topology_mobility () =
  let rng = Rng.create 3L in
  let t = Topology.random_uniform rng ~n:10 ~area:100. ~range:30. in
  let before = Array.init 10 (Topology.position t) in
  for _ = 1 to 20 do
    Topology.random_waypoint_step rng t ~area:100. ~speed:5. ~dt:1.
  done;
  let moved = ref 0 in
  Array.iteri
    (fun i p -> if p <> Topology.position t i then incr moved)
    before;
  check_b "most nodes moved" true (!moved >= 8);
  (* All positions stay within the area (waypoints are inside it). *)
  for i = 0 to 9 do
    let x, y = Topology.position t i in
    check_b "in area" true (x >= -1. && x <= 101. && y >= -1. && y <= 101.)
  done

(* ------------------------------------------------------------------ *)
(* Link                                                                 *)

let link_model () =
  let rng = Rng.create 4L in
  let l = Link.make ~base_latency_ms:10. ~bandwidth_bytes_per_ms:100. ~jitter_ms:0. ~loss:0. () in
  (match Link.delivery rng l ~bytes:1000 with
  | Some latency -> Alcotest.(check (float 0.001)) "latency" 20.0 latency
  | None -> Alcotest.fail "lossless link dropped");
  let lossy = Link.make ~loss:1.0 () in
  check_b "always lost" true (Link.delivery rng lossy ~bytes:10 = None);
  Alcotest.check_raises "bad loss" (Invalid_argument "Link.make: loss must be in [0,1]")
    (fun () -> ignore (Link.make ~loss:1.5 ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let metrics_stats () =
  let s = Metrics.series "x" in
  List.iteri (fun i v -> Metrics.record s ~t:(float_of_int i) v) [ 1.; 2.; 3.; 4.; 100. ];
  Alcotest.(check (float 1e-9)) "mean" 22. (Metrics.mean s);
  Alcotest.(check (float 1e-9)) "p50" 3. (Metrics.percentile s 0.5);
  Alcotest.(check (float 1e-9)) "max" 100. (Metrics.maximum s);
  Alcotest.(check (float 1e-9)) "min" 1. (Metrics.minimum s);
  Alcotest.(check (float 1e-9)) "last" 100. (Metrics.last s);
  check_i "count" 5 (Metrics.count s);
  Alcotest.(check (float 1e-9)) "empty mean" 0. (Metrics.mean_of []);
  Alcotest.(check (float 1e-9)) "p100" 100. (Metrics.percentile_of [ 1.; 100. ] 1.0)

(* ------------------------------------------------------------------ *)
(* Simnet engine                                                        *)

let simnet_delivery_and_timers () =
  let topo = Topology.clique ~n:2 in
  let link = Link.make ~base_latency_ms:5. ~jitter_ms:0. ~loss:0. () in
  let net = Simnet.create ~topo ~link ~seed:1L in
  let got = ref [] in
  Simnet.set_handlers net
    {
      Simnet.on_message = (fun ~me ~from payload -> got := (`Msg (me, from, payload)) :: !got);
      on_timer = (fun ~me ~tag -> got := (`Timer (me, tag)) :: !got);
    };
  Simnet.send net ~src:0 ~dst:1 "hello";
  Simnet.set_timer net ~node:0 ~after:2. ~tag:"tick";
  Simnet.run_until net 100.;
  check_b "timer fired first" true
    (List.rev !got = [ `Timer (0, "tick"); `Msg (1, 0, "hello") ]);
  check_i "delivered" 1 (Simnet.messages_delivered net);
  check_i "tx energy" 5 (Simnet.meter net 0).Energy.tx_bytes;
  check_i "rx energy" 5 (Simnet.meter net 1).Energy.rx_bytes;
  check_b "idle charged" true ((Simnet.meter net 0).Energy.idle_ms > 0.)

let simnet_partition_blocks_messages () =
  let topo = Topology.clique ~n:2 in
  Topology.set_partition topo (Some [| 0; 1 |]);
  let net = Simnet.create ~topo ~link:(Link.make ~loss:0. ()) ~seed:1L in
  let got = ref 0 in
  Simnet.set_handlers net
    {
      Simnet.on_message = (fun ~me:_ ~from:_ _ -> incr got);
      on_timer = (fun ~me:_ ~tag:_ -> ());
    };
  Simnet.send net ~src:0 ~dst:1 "blocked";
  Simnet.run_until net 100.;
  check_i "nothing delivered" 0 !got;
  check_i "counted dropped" 1 (Simnet.messages_dropped net)

let simnet_determinism () =
  let run () =
    let topo = Topology.grid ~n:9 ~spacing:10. ~range:15. in
    let fleet =
      Scenario.build ~seed:123L ~topo
        ~init_crdts:[ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset
                         Vegvisir_crdt.Value.T_string) ] ()
    in
    Scenario.run fleet ~until_ms:5_000.;
    ( Simnet.messages_sent fleet.Scenario.net,
      Simnet.messages_delivered fleet.Scenario.net,
      Simnet.now fleet.Scenario.net )
  in
  check_b "identical runs" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Gossip agent with adversaries                                        *)

let spec_log =
  Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset Vegvisir_crdt.Value.T_string

let add_entry g i entry =
  match
    V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
      [ Vegvisir_crdt.Value.String entry ]
  with
  | Ok tx -> (match Gossip.append g i [ tx ] with Ok b -> Some b | Error _ -> None)
  | Error _ -> None

let gossip_routes_around_withholder () =
  (* Line 0 - 1 - 2 where 1 withholds others' blocks: 0's blocks must NOT
     reach 2 (1 is the only path and censors), demonstrating what
     withholding does; then the same line with an extra honest path shows
     dissemination survives. *)
  let topo = Topology.line ~n:3 ~spacing:10. ~range:12. in
  let fleet =
    Scenario.build ~seed:31L ~topo
      ~behaviors:[| Gossip.Honest; Gossip.Withholding; Gossip.Honest |]
      ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:2_000.;
  let b = Option.get (add_entry g 0 "censored?") in
  Scenario.run fleet ~until_ms:60_000.;
  check_b "withholder itself got it" true
    (V.Dag.mem (V.Node.dag (Gossip.node g 1)) b.V.Block.hash);
  check_b "node 2 censored" false
    (V.Dag.mem (V.Node.dag (Gossip.node g 2)) b.V.Block.hash);
  (* Clique: an honest path exists, the withholder cannot censor. *)
  let topo2 = Topology.clique ~n:3 in
  let fleet2 =
    Scenario.build ~seed:32L ~topo:topo2
      ~behaviors:[| Gossip.Honest; Gossip.Withholding; Gossip.Honest |]
      ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g2 = fleet2.Scenario.gossip in
  Scenario.run fleet2 ~until_ms:2_000.;
  let b2 = Option.get (add_entry g2 0 "survives") in
  Scenario.run fleet2 ~until_ms:60_000.;
  check_b "honest path wins" true
    (V.Dag.mem (V.Node.dag (Gossip.node g2 2)) b2.V.Block.hash)

let gossip_silent_peers_dont_block () =
  let topo = Topology.clique ~n:5 in
  let fleet =
    Scenario.build ~seed:33L ~topo
      ~behaviors:[| Gossip.Honest; Gossip.Silent; Gossip.Silent; Gossip.Honest; Gossip.Honest |]
      ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:2_000.;
  let b = Option.get (add_entry g 0 "through") in
  Scenario.run fleet ~until_ms:120_000.;
  check_b "honest peers all have it" true
    (List.for_all
       (fun i -> V.Dag.mem (V.Node.dag (Gossip.node g i)) b.V.Block.hash)
       [ 0; 3; 4 ]);
  check_b "stats exposed" true (Gossip.sessions_completed g > 0)

let gossip_witness_and_coverage () =
  let topo = Topology.clique ~n:4 in
  let fleet =
    Scenario.build ~seed:34L ~topo ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:2_000.;
  let b = Option.get (add_entry g 1 "observed") in
  check_i "creator holds it" 1 (Gossip.coverage g b.V.Block.hash);
  Scenario.run fleet ~until_ms:30_000.;
  check_i "full coverage" 4 (Gossip.coverage g b.V.Block.hash);
  check_b "birth recorded" true (Gossip.birth_time g b.V.Block.hash <> None);
  check_b "arrival recorded elsewhere" true
    (Gossip.arrival_time g ~peer:3 b.V.Block.hash <> None);
  (* Witness through the gossip layer. *)
  (match Gossip.witness g 2 with Ok _ -> () | Error _ -> Alcotest.fail "witness");
  Scenario.run fleet ~until_ms:60_000.;
  check_b "proof visible at creator" true
    (V.Witness.has_proof (V.Node.dag (Gossip.node g 1)) b.V.Block.hash ~k:1)

(* ------------------------------------------------------------------ *)
(* Duty cycling                                                         *)

let duty_cycle_basics () =
  let topo = Topology.clique ~n:2 in
  let net = Simnet.create ~topo ~link:(Link.make ~loss:0. ()) ~seed:2L in
  check_b "default awake" true (Simnet.is_awake net 0);
  Simnet.set_duty_cycle net ~node:0 ~period_ms:1000. ~awake_fraction:0.25;
  (* Over many sampled instants the node is asleep most of the time. *)
  let awake = ref 0 in
  for k = 1 to 400 do
    Simnet.run_until net (float_of_int k *. 10.);
    if Simnet.is_awake net 0 then incr awake
  done;
  let frac = float_of_int !awake /. 400. in
  check_b (Printf.sprintf "awake fraction %.2f near 0.25" frac) true
    (frac > 0.1 && frac < 0.4);
  Simnet.clear_duty_cycle net ~node:0;
  check_b "cleared" true (Simnet.is_awake net 0);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Simnet.set_duty_cycle: awake_fraction must be in (0, 1]")
    (fun () -> Simnet.set_duty_cycle net ~node:0 ~period_ms:100. ~awake_fraction:0.)

let duty_cycle_blocks_sleeping_receiver () =
  let topo = Topology.clique ~n:2 in
  let net = Simnet.create ~topo ~link:(Link.make ~base_latency_ms:1. ~jitter_ms:0. ~loss:0. ()) ~seed:3L in
  let got = ref 0 in
  Simnet.set_handlers net
    {
      Simnet.on_message = (fun ~me:_ ~from:_ _ -> incr got);
      on_timer = (fun ~me:_ ~tag:_ -> ());
    };
  (* Make node 1 sleep except a tiny window; spam messages across a full
     period: only a fraction get through. *)
  Simnet.set_duty_cycle net ~node:1 ~period_ms:1000. ~awake_fraction:0.2;
  for k = 0 to 99 do
    Simnet.run_until net (float_of_int k *. 10.);
    Simnet.send net ~src:0 ~dst:1 "ping"
  done;
  Simnet.run_until net 2_000.;
  check_b (Printf.sprintf "some delivered (%d)" !got) true (!got > 0);
  check_b (Printf.sprintf "most dropped (%d)" !got) true (!got < 60)

(* ------------------------------------------------------------------ *)
(* Scenario script                                                      *)

let script_parses_and_runs () =
  let text =
    {|
# comment
peers 4
topology clique
seed 9
interval 500
mode indexed
crdt log gset string

at 1000 partition 0 0 1 1
at 2000 append 0 log left entry with spaces
at 2500 append 3 log right
at 5000 heal
at 40000 assert-converged
at 40000 assert-coverage 1.0
at 40000 report
run 41000
|}
  in
  match Script.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok scenario -> begin
    match Script.run scenario with
    | Ok report ->
      check_b "report mentions convergence" true
        (let re = "converged=true" in
         let rec contains i =
           i + String.length re <= String.length report
           && (String.sub report i (String.length re) = re || contains (i + 1))
         in
         contains 0)
    | Error e -> Alcotest.failf "run: %s" e
  end

let script_rejects_malformed () =
  let bad msg text =
    match Script.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" msg
  in
  bad "missing peers" "run 1000
";
  bad "missing run" "peers 3
";
  bad "bad directive" "peers 3
frobnicate
run 100
";
  bad "bad peer index" "peers 2
at 10 append 5 log x
run 100
";
  bad "partition arity" "peers 3
at 10 partition 0 1
run 100
";
  bad "bad mode" "peers 2
mode warp
run 100
"

let script_failing_assert () =
  let text =
    {|
peers 4
topology clique
seed 9
crdt log gset string
at 1000 partition 0 0 1 1
at 2000 append 0 log only-left
at 3000 assert-converged
run 4000
|}
  in
  match Script.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok scenario -> begin
    match Script.run scenario with
    | Error _ -> () (* the partition prevents convergence: must fail *)
    | Ok _ -> Alcotest.fail "assertion should have failed"
  end

let () =
  Alcotest.run "net"
    [
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick queue_ordering;
          Alcotest.test_case "fifo ties" `Quick queue_tie_break_fifo;
          Alcotest.test_case "nan" `Quick queue_nan_rejected;
          Alcotest.test_case "random sorted" `Quick queue_random_sorted;
        ] );
      ("energy", [ Alcotest.test_case "accounting" `Quick energy_accounting ]);
      ( "topology",
        [
          Alcotest.test_case "geometry" `Quick topology_geometry;
          Alcotest.test_case "partitions" `Quick topology_partitions;
          Alcotest.test_case "mobility" `Quick topology_mobility;
        ] );
      ("link", [ Alcotest.test_case "model" `Quick link_model ]);
      ("metrics", [ Alcotest.test_case "stats" `Quick metrics_stats ]);
      ( "simnet",
        [
          Alcotest.test_case "delivery and timers" `Quick simnet_delivery_and_timers;
          Alcotest.test_case "partition blocks" `Quick simnet_partition_blocks_messages;
          Alcotest.test_case "determinism" `Quick simnet_determinism;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "withholding adversary" `Quick gossip_routes_around_withholder;
          Alcotest.test_case "silent peers" `Quick gossip_silent_peers_dont_block;
          Alcotest.test_case "witness + coverage" `Quick gossip_witness_and_coverage;
        ] );
      ( "duty-cycle",
        [
          Alcotest.test_case "basics" `Quick duty_cycle_basics;
          Alcotest.test_case "sleeping receiver" `Quick duty_cycle_blocks_sleeping_receiver;
        ] );
      ( "script",
        [
          Alcotest.test_case "parses and runs" `Quick script_parses_and_runs;
          Alcotest.test_case "rejects malformed" `Quick script_rejects_malformed;
          Alcotest.test_case "failing assert" `Quick script_failing_assert;
        ] );
    ]
