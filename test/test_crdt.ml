(* Unit and property tests for the vegvisir_crdt library.

   The load-bearing properties are (a) every CRDT converges regardless of
   the order concurrent operations are applied in, and (b) state-based
   merge is a join (commutative, associative, idempotent). *)

open Vegvisir_crdt

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let ctx ?(origin = "user-1") ?(ts = 1L) uid = Op_ctx.make ~origin ~timestamp:ts ~uid

(* ------------------------------------------------------------------ *)
(* Value                                                                *)

let value_typecheck () =
  let open Value in
  check_b "int" true (typecheck T_int (Int 4));
  check_b "int vs string" false (typecheck T_int (String "4"));
  check_b "any" true (typecheck T_any (Pair (Int 1, Bool true)));
  check_b "list ok" true (typecheck (T_list T_string) (List [ String "a"; String "b" ]));
  check_b "list bad elem" false (typecheck (T_list T_string) (List [ String "a"; Int 1 ]));
  check_b "empty list" true (typecheck (T_list T_int) (List []));
  check_b "pair" true (typecheck (T_pair (T_int, T_bool)) (Pair (Int 1, Bool false)));
  check_b "pair mismatch" false (typecheck (T_pair (T_int, T_bool)) (Pair (Bool false, Int 1)));
  check_b "unit" true (typecheck T_unit Unit);
  check_b "bytes" true (typecheck T_bytes (Bytes "\x00\x01"));
  check_b "float" true (typecheck T_float (Float 3.14))

let value_roundtrip () =
  let open Value in
  let vs =
    [
      Unit;
      Bool true;
      Bool false;
      Int 0;
      Int (-1);
      Int max_int;
      Int min_int;
      Float 0.0;
      Float (-1.5e300);
      String "";
      String "hello";
      Bytes "\x00\xff";
      List [];
      List [ Int 1; String "two"; List [ Bool true ] ];
      Pair (Pair (Int 1, Int 2), String "nested");
    ]
  in
  List.iter
    (fun v ->
      match of_string (to_string v) with
      | Some v' -> check_b (Fmt.str "%a" pp v) true (equal v v')
      | None -> Alcotest.failf "roundtrip failed for %a" pp v)
    vs

let value_decode_errors () =
  check_b "garbage" true (Value.of_string "\xff" = None);
  check_b "truncated" true (Value.of_string "\x03\x00" = None);
  check_b "trailing" true (Value.of_string (Value.to_string Value.Unit ^ "x") = None);
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Value.encode: NaN is not encodable") (fun () ->
      ignore (Value.to_string (Value.Float Float.nan)))

let ty_roundtrip () =
  let open Value in
  List.iter
    (fun ty ->
      let b = Buffer.create 8 in
      encode_ty b ty;
      let pos = ref 0 in
      let ty' = decode_ty (Buffer.contents b) pos in
      check_b (ty_to_string ty) true (ty = ty'))
    [
      T_unit; T_bool; T_int; T_float; T_string; T_bytes; T_any;
      T_list (T_pair (T_int, T_list T_string));
      T_pair (T_any, T_bytes);
    ]

(* ------------------------------------------------------------------ *)
(* Individual CRDT semantics                                            *)

let v s = Value.String s

let gset_semantics () =
  let s = Gset.empty |> Gset.add (v "a") |> Gset.add (v "b") |> Gset.add (v "a") in
  check_i "cardinal dedupes" 2 (Gset.cardinal s);
  check_b "mem" true (Gset.mem (v "a") s);
  check_b "not mem" false (Gset.mem (v "c") s)

let two_pset_semantics () =
  let s = Two_pset.empty |> Two_pset.add (v "a") |> Two_pset.add (v "b") in
  let s = Two_pset.remove (v "a") s in
  check_b "removed" false (Two_pset.mem (v "a") s);
  check_b "still there" true (Two_pset.mem (v "b") s);
  (* Remove wins forever: re-adding does not resurrect. *)
  let s = Two_pset.add (v "a") s in
  check_b "no resurrection" false (Two_pset.mem (v "a") s);
  check_b "ever added" true (Two_pset.ever_added (v "a") s);
  (* Remove-before-add commutes. *)
  let s2 = Two_pset.empty |> Two_pset.remove (v "x") |> Two_pset.add (v "x") in
  check_b "remove-first also dead" false (Two_pset.mem (v "x") s2)

let orset_semantics () =
  let s = Orset.empty |> Orset.add ~tag:"t1" (v "a") in
  check_b "added" true (Orset.mem (v "a") s);
  let observed = Orset.observed_tags (v "a") s in
  let s = Orset.remove ~tags:observed (v "a") s in
  check_b "removed" false (Orset.mem (v "a") s);
  (* Re-add with a fresh tag resurrects (unlike 2P). *)
  let s = Orset.add ~tag:"t2" (v "a") s in
  check_b "resurrected" true (Orset.mem (v "a") s);
  (* Concurrent add not covered by the remove survives (add-wins). *)
  let s2 = Orset.empty |> Orset.add ~tag:"t1" (v "a") in
  let s2 = Orset.remove ~tags:[ "t1" ] (v "a") s2 in
  let s2 = Orset.add ~tag:"t3" (v "a") s2 in
  check_b "concurrent add wins" true (Orset.mem (v "a") s2);
  (* Remove arriving before its add: add stays dead (tombstone). *)
  let s3 = Orset.empty |> Orset.remove ~tags:[ "t9" ] (v "z") in
  let s3 = Orset.add ~tag:"t9" (v "z") s3 in
  check_b "tombstoned add dead" false (Orset.mem (v "z") s3)

let counters_semantics () =
  let c = Gcounter.empty in
  let c = Gcounter.incr ~origin:"a" 3 c in
  let c = Gcounter.incr ~origin:"b" 4 c in
  let c = Gcounter.incr ~origin:"a" 1 c in
  check_i "value" 8 (Gcounter.value c);
  check_i "per origin" 4 (Gcounter.value_of ~origin:"a" c);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Gcounter.incr: amount must be positive") (fun () ->
      ignore (Gcounter.incr ~origin:"a" 0 c));
  let p = Pncounter.empty in
  let p = Pncounter.incr ~origin:"a" 10 p in
  let p = Pncounter.decr ~origin:"b" 4 p in
  check_i "pn value" 6 (Pncounter.value p)

let lww_semantics () =
  let r = Lww_register.empty in
  check_b "unset" true (Lww_register.value r = None);
  let r = Lww_register.set ~ts:5L ~uid:"u1" (v "first") r in
  let r = Lww_register.set ~ts:3L ~uid:"u2" (v "older") r in
  check_b "older write loses" true (Lww_register.value r = Some (v "first"));
  let r = Lww_register.set ~ts:9L ~uid:"u3" (v "newer") r in
  check_b "newer wins" true (Lww_register.value r = Some (v "newer"));
  (* Equal timestamps: uid tie-break, order-independent. *)
  let a = Lww_register.set ~ts:9L ~uid:"zz" (v "zz-val") r in
  let b =
    Lww_register.set ~ts:9L ~uid:"u3" (v "newer")
      (Lww_register.set ~ts:9L ~uid:"zz" (v "zz-val") Lww_register.empty)
  in
  check_b "tie-break deterministic" true (Lww_register.equal a b)

let mv_semantics () =
  let r = Mv_register.empty in
  let r = Mv_register.set ~uid:"w1" ~overwrites:[] (v "a") r in
  let r = Mv_register.set ~uid:"w2" ~overwrites:[] (v "b") r in
  check_i "two concurrent values" 2 (List.length (Mv_register.values r));
  let r2 = Mv_register.set ~uid:"w3" ~overwrites:[ "w1"; "w2" ] (v "c") r in
  check_b "overwrite collapses" true (Mv_register.values r2 = [ v "c" ]);
  (* Overwrite arriving before the writes it overwrites. *)
  let r3 = Mv_register.set ~uid:"w3" ~overwrites:[ "w1"; "w2" ] (v "c") Mv_register.empty in
  let r3 = Mv_register.set ~uid:"w1" ~overwrites:[] (v "a") r3 in
  check_b "late write stays dead" true (Mv_register.values r3 = [ v "c" ])

let rgraph_semantics () =
  let g = Rgraph.empty |> Rgraph.add_vertex (v "a") |> Rgraph.add_vertex (v "b") in
  let g = Rgraph.add_edge (v "a") (v "b") g in
  check_b "edge" true (Rgraph.has_edge (v "a") (v "b") g);
  check_b "edge direction" false (Rgraph.has_edge (v "b") (v "a") g);
  (* Edge whose endpoint is unknown stays invisible until the vertex add
     arrives (possibly via another branch). *)
  let g = Rgraph.add_edge (v "a") (v "c") g in
  check_b "dangling edge hidden" false (Rgraph.has_edge (v "a") (v "c") g);
  check_i "visible edges" 1 (List.length (Rgraph.edges g));
  let g = Rgraph.add_vertex (v "c") g in
  check_b "edge appears with vertex" true (Rgraph.has_edge (v "a") (v "c") g);
  check_b "successors" true (Rgraph.successors (v "a") g = [ v "b"; v "c" ])

let rga_semantics () =
  let s = Rga.empty in
  let s = Rga.insert ~anchor:Rga.head ~id:"a" (v "A") s in
  let s = Rga.insert ~anchor:"a" ~id:"b" (v "B") s in
  let s = Rga.insert ~anchor:"a" ~id:"c" (v "C") s in
  (* Concurrent siblings at the same anchor: descending id => "c" first. *)
  check_b "sequence order" true (Rga.to_list s = [ v "A"; v "C"; v "B" ]);
  check_i "length" 3 (Rga.length s);
  check_b "id_at" true (Rga.id_at s 1 = Some "c");
  let s = Rga.delete ~id:"c" s in
  check_b "delete hides" true (Rga.to_list s = [ v "A"; v "B" ]);
  (* Deleted elements still anchor: inserting after "c" works. *)
  let s = Rga.insert ~anchor:"c" ~id:"d" (v "D") s in
  check_b "anchor on tombstone" true (Rga.to_list s = [ v "A"; v "D"; v "B" ]);
  (* Out-of-order: insert before its anchor exists. *)
  let s2 = Rga.empty |> Rga.insert ~anchor:"x" ~id:"y" (v "Y") in
  check_i "orphan parked" 1 (Rga.orphan_count s2);
  check_b "orphan invisible" true (Rga.to_list s2 = []);
  let s2 = Rga.insert ~anchor:Rga.head ~id:"x" (v "X") s2 in
  check_i "orphan integrated" 0 (Rga.orphan_count s2);
  check_b "both visible" true (Rga.to_list s2 = [ v "X"; v "Y" ]);
  (* Delete before insert. *)
  let s3 = Rga.empty |> Rga.delete ~id:"z" in
  let s3 = Rga.insert ~anchor:Rga.head ~id:"z" (v "Z") s3 in
  check_b "pre-deleted stays dead" true (Rga.to_list s3 = [])

(* ------------------------------------------------------------------ *)
(* Schema                                                               *)

let schema_signatures () =
  let s = Schema.spec Schema.Orset Value.T_string in
  check_b "add sig" true (Schema.op_signature s "add" = Some [ Value.T_string ]);
  check_b "remove sig has tag list" true
    (Schema.op_signature s "remove" = Some [ Value.T_string; Value.T_list Value.T_string ]);
  check_b "unknown" true (Schema.op_signature s "frobnicate" = None);
  check_b "check_args ok" true
    (Schema.check_args s ~op:"add" [ Value.String "x" ] = Ok ());
  (match Schema.check_args s ~op:"add" [ Value.Int 1 ] with
  | Error (Schema.Type_error _) -> ()
  | _ -> Alcotest.fail "expected type error");
  (match Schema.check_args s ~op:"add" [] with
  | Error (Schema.Bad_arity { expected = 1; got = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected arity error")

let schema_permissions () =
  let s =
    Schema.spec ~perms:[ ("add", [ "medic" ]); ("remove", [ "*" ]) ]
      Schema.Two_pset Value.T_string
  in
  check_b "listed role" true (Schema.permitted s ~role:"medic" ~op:"add");
  check_b "other role" false (Schema.permitted s ~role:"logistics" ~op:"add");
  check_b "wildcard" true (Schema.permitted s ~role:"anyone" ~op:"remove");
  check_b "unlisted op open" true (Schema.permitted s ~role:"anyone" ~op:"mem")

let schema_roundtrip () =
  let specs =
    [
      Schema.spec Schema.Gset Value.T_string;
      Schema.spec ~perms:[ ("add", [ "a"; "b" ]) ] Schema.Orset
        Value.(T_pair (T_int, T_bytes));
      Schema.spec Schema.Rgraph Value.T_any;
      Schema.spec Schema.Pncounter Value.T_int;
    ]
  in
  List.iter
    (fun s ->
      match Schema.of_string (Schema.to_string s) with
      | Some s' -> check_b "spec roundtrip" true (Schema.equal s s')
      | None -> Alcotest.fail "spec roundtrip failed")
    specs;
  check_b "garbage spec" true (Schema.of_string "\xff\xff" = None)

(* ------------------------------------------------------------------ *)
(* Instance dispatch                                                    *)

let instance_apply_and_query () =
  let inst = Instance.create (Schema.spec Schema.Gset Value.T_string) in
  let inst =
    match Instance.apply inst ~ctx:(ctx "u1") ~op:"add" [ v "x" ] with
    | Ok i -> i
    | Error e -> Alcotest.failf "apply: %s" (Schema.error_to_string e)
  in
  (match Instance.query inst "mem" [ v "x" ] with
  | Ok (Value.Bool true) -> ()
  | _ -> Alcotest.fail "mem query");
  (match Instance.query inst "size" [] with
  | Ok (Value.Int 1) -> ()
  | _ -> Alcotest.fail "size query");
  (match Instance.apply inst ~ctx:(ctx "u2") ~op:"nope" [] with
  | Error (Schema.Unknown_op "nope") -> ()
  | _ -> Alcotest.fail "unknown op");
  (match Instance.apply inst ~ctx:(ctx "u3") ~op:"add" [ Value.Int 1 ] with
  | Error (Schema.Type_error _) -> ()
  | _ -> Alcotest.fail "type error");
  match Instance.query inst "value" [] with
  | Error (Schema.Unknown_op _) -> ()
  | _ -> Alcotest.fail "bad query op"

let instance_prepare_enriches () =
  let inst = Instance.create (Schema.spec Schema.Orset Value.T_string) in
  let inst =
    Result.get_ok (Instance.apply inst ~ctx:(ctx "u1") ~op:"add" [ v "x" ])
  in
  (match Instance.prepare inst ~op:"remove" [ v "x" ] with
  | Ok [ _; Value.List [ Value.String tag ] ] -> check_s "observed tag" "u1" tag
  | Ok args ->
    Alcotest.failf "unexpected prepared args: %a" Fmt.(list Value.pp) args
  | Error e -> Alcotest.failf "prepare: %s" (Schema.error_to_string e));
  (* Counter prepare is pass-through with checks. *)
  let cnt = Instance.create (Schema.spec Schema.Gcounter Value.T_int) in
  (match Instance.prepare cnt ~op:"incr" [ Value.Int 5 ] with
  | Ok [ Value.Int 5 ] -> ()
  | _ -> Alcotest.fail "counter prepare");
  match Instance.apply cnt ~ctx:(ctx "u1") ~op:"incr" [ Value.Int (-5) ] with
  | Error (Schema.Invalid_argument_value _) -> ()
  | _ -> Alcotest.fail "negative incr must fail"

let instance_merge_incompatible () =
  let a = Instance.create (Schema.spec Schema.Gset Value.T_string) in
  let b = Instance.create (Schema.spec Schema.Orset Value.T_string) in
  Alcotest.check_raises "incompatible merge"
    (Invalid_argument "Instance.merge: incompatible specs") (fun () ->
      ignore (Instance.merge a b))

(* ------------------------------------------------------------------ *)
(* Store (Omega)                                                        *)

let store_create_and_apply () =
  let spec = Schema.spec Schema.Gset Value.T_string in
  let store =
    Result.get_ok
      (Store.apply Store.empty ~role:"member" ~ctx:(ctx "c1")
         ~crdt:Store.omega_name ~op:Store.create_op
         (Store.create_args ~name:"log" spec))
  in
  check_b "created" true (Store.find store "log" <> None);
  check_b "names" true (Store.names store = [ "log" ]);
  let store =
    Result.get_ok
      (Store.apply store ~role:"member" ~ctx:(ctx "op1") ~crdt:"log" ~op:"add"
         [ v "entry" ])
  in
  (match Store.query store ~crdt:"log" ~op:"mem" [ v "entry" ] with
  | Ok (Value.Bool true) -> ()
  | _ -> Alcotest.fail "query after apply");
  (match
     Store.apply store ~role:"member" ~ctx:(ctx "op2") ~crdt:"nope" ~op:"add"
       [ v "x" ]
   with
  | Error (Schema.No_such_crdt "nope") -> ()
  | _ -> Alcotest.fail "missing CRDT");
  (* Reserved names refused. *)
  match
    Store.apply store ~role:"member" ~ctx:(ctx "c2") ~crdt:Store.omega_name
      ~op:Store.create_op
      (Store.create_args ~name:"_sneaky" spec)
  with
  | Error (Schema.Invalid_argument_value _) -> ()
  | _ -> Alcotest.fail "reserved name accepted"

let store_create_idempotent_and_conflict () =
  let spec1 = Schema.spec Schema.Gset Value.T_string in
  let spec2 = Schema.spec Schema.Orset Value.T_int in
  let create name spec uid st =
    Result.get_ok
      (Store.apply st ~role:"m" ~ctx:(ctx uid) ~crdt:Store.omega_name
         ~op:Store.create_op
         (Store.create_args ~name spec))
  in
  let st = create "x" spec1 "uid-b" Store.empty in
  let st = create "x" spec1 "uid-z" st in
  check_i "idempotent: no conflict" 0 (Store.conflicts st);
  (* Conflicting spec: smaller uid wins regardless of order. *)
  let st1 = create "x" spec2 "uid-a" st in
  check_i "conflict counted" 1 (Store.conflicts st1);
  check_b "uid-a won" true
    (Schema.equal (Instance.spec (Option.get (Store.find st1 "x"))) spec2);
  let st2 = create "x" spec2 "uid-q" st in
  check_b "uid-b retained" true
    (Schema.equal (Instance.spec (Option.get (Store.find st2 "x"))) spec1)

let store_permissions () =
  let spec = Schema.spec ~perms:[ ("add", [ "medic" ]) ] Schema.Gset Value.T_string in
  let st =
    Result.get_ok
      (Store.apply Store.empty ~role:"anyone" ~ctx:(ctx "c")
         ~crdt:Store.omega_name ~op:Store.create_op
         (Store.create_args ~name:"h" spec))
  in
  (match Store.apply st ~role:"medic" ~ctx:(ctx "o1") ~crdt:"h" ~op:"add" [ v "r" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "medic should add: %s" (Schema.error_to_string e));
  match Store.apply st ~role:"logistics" ~ctx:(ctx "o2") ~crdt:"h" ~op:"add" [ v "r" ] with
  | Error (Schema.Permission_denied { role = "logistics"; op = "add" }) -> ()
  | _ -> Alcotest.fail "permission should be denied"

(* ------------------------------------------------------------------ *)
(* Property tests: commutativity / convergence / join laws              *)

type op = O : string * (Op_ctx.t -> Instance.t -> Instance.t) -> op

let apply_ops ?(salt = "") inst ops =
  List.fold_left
    (fun inst (i, O (_, f)) -> f (ctx (Printf.sprintf "uid%s-%d" salt i)) inst)
    inst ops

let shuffle_with seed l =
  let rng = Vegvisir_crypto.Rng.create seed in
  let a = Array.of_list l in
  Vegvisir_crypto.Rng.shuffle rng a;
  Array.to_list a

let mk_apply op args ctx inst =
  match Instance.apply inst ~ctx ~op args with Ok i -> i | Error _ -> inst

(* Generate indexed op lists for a given kind from random integers. *)
let ops_of_ints kind ints =
  List.mapi
    (fun i n ->
      let elem = Value.String (Printf.sprintf "e%d" (abs n mod 8)) in
      let op =
        match kind with
        | Schema.Gset -> O ("add", mk_apply "add" [ elem ])
        | Schema.Two_pset ->
          if n mod 3 = 0 then O ("remove", mk_apply "remove" [ elem ])
          else O ("add", mk_apply "add" [ elem ])
        | Schema.Orset ->
          if n mod 3 = 0 then
            O
              ( "remove",
                mk_apply "remove"
                  [ elem;
                    Value.List [ Value.String (Printf.sprintf "uid-%d" (abs n mod 20)) ] ] )
          else O ("add", mk_apply "add" [ elem ])
        | Schema.Gcounter -> O ("incr", mk_apply "incr" [ Value.Int ((abs n mod 5) + 1) ])
        | Schema.Pncounter ->
          if n mod 2 = 0 then O ("incr", mk_apply "incr" [ Value.Int ((abs n mod 5) + 1) ])
          else O ("decr", mk_apply "decr" [ Value.Int ((abs n mod 5) + 1) ])
        | Schema.Lww_register ->
          O
            ( "set",
              fun c inst ->
                let c =
                  Op_ctx.make ~origin:c.Op_ctx.origin
                    ~timestamp:(Int64.of_int (abs n mod 7))
                    ~uid:c.Op_ctx.uid
                in
                mk_apply "set" [ elem ] c inst )
        | Schema.Mv_register ->
          O
            ( "set",
              mk_apply "set"
                [ elem;
                  Value.List [ Value.String (Printf.sprintf "uid-%d" (abs n mod 20)) ] ] )
        | Schema.Rgraph ->
          if n mod 2 = 0 then O ("add_vertex", mk_apply "add_vertex" [ elem ])
          else
            O
              ( "add_edge",
                mk_apply "add_edge"
                  [ elem; Value.String (Printf.sprintf "e%d" (abs (n / 2) mod 8)) ] )
        | Schema.Rga ->
          if n mod 4 = 0 then
            O
              ( "delete",
                mk_apply "delete" [ Value.String (Printf.sprintf "uid-%d" (abs n mod 20)) ] )
          else begin
            (* Anchor on an earlier op's uid (or the head) so that most
               inserts eventually integrate, whatever the order. *)
            let anchor =
              if n mod 3 = 0 then "" else Printf.sprintf "uid-%d" (abs n mod max 1 i)
            in
            O ("insert", mk_apply "insert" [ Value.String anchor; elem ])
          end
      in
      (i, op))
    ints

let kinds =
  [
    ("gset", Schema.Gset); ("2pset", Schema.Two_pset); ("orset", Schema.Orset);
    ("gcounter", Schema.Gcounter); ("pncounter", Schema.Pncounter);
    ("lww", Schema.Lww_register); ("mv", Schema.Mv_register);
    ("rgraph", Schema.Rgraph); ("rga", Schema.Rga);
  ]

let spec_of kind =
  Schema.spec kind
    (match kind with
    | Schema.Gcounter | Schema.Pncounter -> Value.T_int
    | _ -> Value.T_string)

let convergence_tests =
  let open QCheck in
  List.map
    (fun (name, kind) ->
      Test.make
        ~name:(Printf.sprintf "%s: shuffled op orders converge" name)
        ~count:60
        (pair (list_of_size Gen.(1 -- 25) int) int64)
        (fun (ints, seed) ->
          let spec = spec_of kind in
          let ops = ops_of_ints kind ints in
          let a = apply_ops (Instance.create spec) ops in
          let b = apply_ops (Instance.create spec) (shuffle_with seed ops) in
          Instance.equal a b))
    kinds

let merge_law_tests =
  let open QCheck in
  List.concat_map
    (fun (name, kind) ->
      let spec = spec_of kind in
      (* Distinct salts: operation uids must be globally unique across the
         states being merged, as they are in the real system. *)
      let salt_counter = ref 0 in
      let state_of ints =
        incr salt_counter;
        apply_ops
          ~salt:(string_of_int !salt_counter)
          (Instance.create spec) (ops_of_ints kind ints)
      in
      [
        Test.make ~name:(name ^ ": merge commutative") ~count:40
          (pair (list_of_size Gen.(0 -- 15) int) (list_of_size Gen.(0 -- 15) int))
          (fun (xs, ys) ->
            let a = state_of xs and b = state_of ys in
            Instance.equal (Instance.merge a b) (Instance.merge b a));
        Test.make ~name:(name ^ ": merge idempotent") ~count:40
          (list_of_size Gen.(0 -- 15) int)
          (fun xs ->
            let a = state_of xs in
            Instance.equal (Instance.merge a a) a);
        Test.make ~name:(name ^ ": merge associative") ~count:40
          (triple (list_of_size Gen.(0 -- 10) int)
             (list_of_size Gen.(0 -- 10) int)
             (list_of_size Gen.(0 -- 10) int))
          (fun (xs, ys, zs) ->
            let a = state_of xs and b = state_of ys and c = state_of zs in
            Instance.equal
              (Instance.merge a (Instance.merge b c))
              (Instance.merge (Instance.merge a b) c));
        Test.make ~name:(name ^ ": merge with empty is identity") ~count:40
          (list_of_size Gen.(0 -- 15) int)
          (fun xs ->
            let a = state_of xs in
            Instance.equal (Instance.merge a (Instance.create spec)) a);
      ])
    kinds

let value_prop_tests =
  let open QCheck in
  let value_gen =
    let open Gen in
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  return Value.Unit;
                  map (fun b -> Value.Bool b) bool;
                  map (fun i -> Value.Int i) int;
                  map (fun s -> Value.String s) (string_size (0 -- 12));
                  map (fun s -> Value.Bytes s) (string_size (0 -- 12));
                ]
            else
              oneof
                [
                  map (fun l -> Value.List l) (list_size (0 -- 4) (self (n / 2)));
                  map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
                  map (fun i -> Value.Int i) int;
                ])
          (min n 6))
  in
  [
    Test.make ~name:"value encode/decode roundtrip" ~count:200
      (make ~print:(Fmt.str "%a" Value.pp) value_gen)
      (fun v ->
        match Value.of_string (Value.to_string v) with
        | Some v' -> Value.equal v v'
        | None -> false);
    Test.make ~name:"value compare is consistent" ~count:100
      (triple (make value_gen) (make value_gen) (make value_gen))
      (fun (a, b, c) ->
        let sgn x = compare x 0 in
        sgn (Value.compare a b) = -sgn (Value.compare b a)
        && ((not (Value.compare a b <= 0 && Value.compare b c <= 0))
           || Value.compare a c <= 0));
  ]

let () =
  Alcotest.run "crdt"
    [
      ( "value",
        [
          Alcotest.test_case "typecheck" `Quick value_typecheck;
          Alcotest.test_case "roundtrip" `Quick value_roundtrip;
          Alcotest.test_case "decode errors" `Quick value_decode_errors;
          Alcotest.test_case "ty roundtrip" `Quick ty_roundtrip;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "gset" `Quick gset_semantics;
          Alcotest.test_case "2pset" `Quick two_pset_semantics;
          Alcotest.test_case "orset" `Quick orset_semantics;
          Alcotest.test_case "counters" `Quick counters_semantics;
          Alcotest.test_case "lww" `Quick lww_semantics;
          Alcotest.test_case "mv" `Quick mv_semantics;
          Alcotest.test_case "rgraph" `Quick rgraph_semantics;
          Alcotest.test_case "rga" `Quick rga_semantics;
        ] );
      ( "schema",
        [
          Alcotest.test_case "signatures" `Quick schema_signatures;
          Alcotest.test_case "permissions" `Quick schema_permissions;
          Alcotest.test_case "roundtrip" `Quick schema_roundtrip;
        ] );
      ( "instance",
        [
          Alcotest.test_case "apply and query" `Quick instance_apply_and_query;
          Alcotest.test_case "prepare enriches" `Quick instance_prepare_enriches;
          Alcotest.test_case "merge incompatible" `Quick instance_merge_incompatible;
        ] );
      ( "store",
        [
          Alcotest.test_case "create and apply" `Quick store_create_and_apply;
          Alcotest.test_case "idempotent/conflict" `Quick
            store_create_idempotent_and_conflict;
          Alcotest.test_case "permissions" `Quick store_permissions;
        ] );
      ( "convergence",
        List.map (QCheck_alcotest.to_alcotest ~long:false) convergence_tests );
      ("merge-laws", List.map (QCheck_alcotest.to_alcotest ~long:false) merge_law_tests);
      ("value-props", List.map (QCheck_alcotest.to_alcotest ~long:false) value_prop_tests);
    ]
