open Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let ts ms = Timestamp.of_ms (Int64.of_int ms)

let smoke () =
  let ca_signer = Signer.mss ~height:6 ~seed:"ca-seed" () in
  let ca_cert = Certificate.self_signed ~signer:ca_signer ~role:"ca" in
  let alice_signer = Signer.mss ~height:6 ~seed:"alice-seed" () in
  let alice_cert = Certificate.issue ~ca:ca_cert ~ca_signer ~subject:alice_signer ~role:"medic" in
  let requests_spec = Schema.spec Schema.Gset Value.T_string in
  let genesis =
    Node.genesis_block ~signer:ca_signer ~cert:ca_cert ~timestamp:(ts 1)
      ~extra:[ Transaction.create_crdt ~name:"requests" requests_spec;
               Transaction.add_user alice_cert ] ()
  in
  let ca_node = Node.create ~signer:ca_signer ~cert:ca_cert () in
  let alice = Node.create ~signer:alice_signer ~cert:alice_cert () in
  Alcotest.(check bool) "ca accepts genesis" true (Node.receive ca_node ~now:(ts 10) genesis = Node.Accepted);
  Alcotest.(check bool) "alice accepts genesis" true (Node.receive alice ~now:(ts 10) genesis = Node.Accepted);
  (* Alice appends a request *)
  let tx = match Node.prepare_transaction alice ~crdt:"requests" ~op:"add" [ Value.String "record-42" ] with
    | Ok tx -> tx | Error e -> Alcotest.failf "prepare: %s" (Schema.error_to_string e)
  in
  let b1 = match Node.append alice ~now:(ts 100) [ tx ] with
    | Ok b -> b | Error e -> Alcotest.failf "append: %a" Node.pp_append_error e
  in
  Alcotest.(check int) "b1 has one parent" 1 (List.length b1.Block.parents);
  (* CA node receives alice's block *)
  Alcotest.(check bool) "ca accepts b1" true (Node.receive ca_node ~now:(ts 200) b1 = Node.Accepted);
  Alcotest.(check bool) "converged" true (Csm.converged (Node.csm ca_node) (Node.csm alice));
  (match Csm.query (Node.csm ca_node) ~crdt:"requests" ~op:"mem" [ Value.String "record-42" ] with
   | Ok (Value.Bool true) -> ()
   | Ok v -> Alcotest.failf "unexpected query result: %a" Value.pp v
   | Error e -> Alcotest.failf "query: %s" (Schema.error_to_string e));
  (* CA appends concurrently-ish and reconciliation merges *)
  let b2 = match Node.append ca_node ~now:(ts 300) [] with
    | Ok b -> b | Error e -> Alcotest.failf "append2: %a" Node.pp_append_error e
  in
  ignore b2;
  let merged, stats = Reconcile.sync_dags Reconcile.Naive (Node.dag alice) (Node.dag ca_node) in
  Alcotest.(check int) "alice missing one block" 1 stats.Reconcile.blocks_received;
  Alcotest.(check int) "merged has all blocks" 3 (Dag.cardinal merged);
  (* witness proof: b1 has ca as witness via b2 *)
  Alcotest.(check bool) "b1 witnessed by 1" true (Witness.has_proof (Node.dag ca_node) b1.Block.hash ~k:1)

let () =
  Alcotest.run "smoke" [ ("integration", [ Alcotest.test_case "two nodes" `Quick smoke ]) ]
