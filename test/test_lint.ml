(* vegvisir-lint self-tests: every rule fires on a known-bad fixture,
   stays silent on a known-good one, and respects suppressions. Fixtures
   are OCaml source embedded as strings and parsed through the same
   compiler-libs front end the real tool uses; the [~path] argument
   drives rule scoping exactly as on disk. *)

let lint path src = Veglint.Driver.lint_source ~path src

let rules_of fs = List.map (fun (f : Veglint.Finding.t) -> f.rule) fs

let fires rule path src =
  List.exists (fun (f : Veglint.Finding.t) -> String.equal f.rule rule)
    (lint path src)

let check_fires rule path src =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s" rule path)
    true (fires rule path src)

let check_silent ?rule path src =
  match rule with
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "%s silent in %s" r path)
      false (fires r path src)
  | None ->
    Alcotest.(check (list string))
      (Printf.sprintf "no findings in %s" path)
      [] (rules_of (lint path src))

(* ------------------------------------------------------------------ *)

let test_wall_clock () =
  check_fires "no-wall-clock" "lib/net/simnet.ml"
    "let t = Unix.gettimeofday ()";
  check_fires "no-wall-clock" "lib/core/block.ml" "let t = Sys.time ()";
  check_fires "no-wall-clock" "bench/main.ml" "let t = Unix.time ()";
  (* The one sanctioned call site. *)
  check_silent "lib/cli/unix_compat.ml" "let now () = Unix.gettimeofday ()";
  (* Unrelated Unix calls stay legal. *)
  check_silent "lib/cli/node_store.ml" "let f p = Unix.mkdir p 0o755"

let test_global_random () =
  check_fires "no-global-random" "lib/net/gossip.ml" "let x = Random.int 10";
  check_fires "no-global-random" "examples/quickstart.ml"
    "let () = Random.self_init ()";
  check_fires "no-global-random" "lib/crypto/rng.ml"
    "let s = Random.State.make [| 1 |]";
  check_fires "no-global-random" "lib/core/node.ml"
    "let x = Stdlib.Random.bits ()";
  check_silent "lib/net/gossip.ml"
    "let x rng = Vegvisir_crypto.Rng.int rng 10"

let test_poly_compare () =
  check_fires "no-poly-compare" "lib/core/dag.ml" "let f a b = a = b";
  check_fires "no-poly-compare" "lib/crdt/gset.ml" "let f a b = a <> b";
  check_fires "no-poly-compare" "lib/core/reconcile.ml"
    "let s l = List.sort compare l";
  check_fires "no-poly-compare" "lib/core/dag.ml" "let f a b = max a b";
  check_fires "no-poly-compare" "lib/crdt/orset.ml" "let f x l = List.mem x l";
  check_fires "no-poly-compare" "lib/crdt/schema.ml"
    "let f k l = List.assoc k l";
  (* Out of scope: only lib/core and lib/crdt are hash-id territory. *)
  check_silent ~rule:"no-poly-compare" "lib/net/topology.ml"
    "let f a b = a = b";
  (* Comparison against a literal/constant constructor is exempt. *)
  check_silent "lib/core/dag.ml" "let f a = a = 3";
  check_silent "lib/core/block.ml" "let f a = a <> None";
  check_silent "lib/core/reconcile.ml" "let f a = max a 1";
  check_silent "lib/crdt/schema.ml" {|let f l = List.mem "x" l|};
  (* A file-local typed definition shadows the polymorphic one. *)
  check_silent "lib/core/hash_id.ml"
    "let compare = String.compare\nlet sorted l = List.sort compare l";
  (* Typed stdlib comparisons are the recommended spelling. *)
  check_silent "lib/core/dag.ml"
    "let f a b = Int.max a b\nlet g a b = Hash_id.equal a b"

let test_unordered_iteration () =
  check_fires "no-unordered-iteration" "lib/experiments/exp_energy.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  (* The engine's effect lists must replay identically everywhere. *)
  check_fires "no-unordered-iteration" "lib/engine/peer_engine.ml"
    "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h []";
  check_fires "no-unordered-iteration" "lib/core/wire.ml"
    "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h []";
  check_fires "no-unordered-iteration" "lib/obs/registry.ml"
    "let f h = Hashtbl.fold (fun _ v a -> v + a) h 0";
  check_fires "no-unordered-iteration" "lib/net/metrics.ml"
    "let f h = Hashtbl.to_seq h";
  (* The CLI renders journals and summaries: order-sensitive output. *)
  check_fires "no-unordered-iteration" "lib/cli/node_store.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  check_fires "no-unordered-iteration" "lib/cli/metrics_server.ml"
    "let f h = Hashtbl.to_seq_keys h";
  (* Sync strategies encode wire messages: hash-order iteration there
     would break byte-identical seeded runs. *)
  check_fires "no-unordered-iteration" "lib/core/sync_strategy.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  check_silent ~rule:"no-unordered-iteration" "lib/core/sync_strategy.ml"
    "let f h = Hashtbl.to_seq h (* lint: allow no-unordered-iteration \
     \xe2\x80\x94 fixture *)";
  (* Span ids and flight dumps must render byte-identically: hash-order
     iteration in either would break same-seed determinism. *)
  check_fires "no-unordered-iteration" "lib/obs/span.ml"
    "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h []";
  check_fires "no-unordered-iteration" "lib/obs/flight.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  check_silent ~rule:"no-unordered-iteration" "lib/obs/span.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h (* lint: allow \
     no-unordered-iteration \xe2\x80\x94 fixture *)";
  (* Order-insensitive modules may use hash tables freely. *)
  check_silent ~rule:"no-unordered-iteration" "lib/core/dag.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h";
  (* Point lookups don't iterate; only traversals are flagged. *)
  check_silent ~rule:"no-unordered-iteration" "lib/cli/node_store.ml"
    "let f h k = Hashtbl.find_opt h k";
  (* A reasoned suppression covers a sanctioned traversal. *)
  check_silent ~rule:"no-unordered-iteration" "lib/cli/node_store.ml"
    "let f h = Hashtbl.iter (fun _ _ -> ()) h (* lint: allow \
     no-unordered-iteration \xe2\x80\x94 fixture *)";
  (* The event-loop host schedules sessions and timers: a hash-order
     traversal there would make the wire schedule nondeterministic. *)
  check_fires "no-unordered-iteration" "lib/cli/event_loop.ml"
    "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h []";
  check_fires "no-unordered-iteration" "lib/cli/timer_wheel.ml"
    "let f h = Hashtbl.to_seq h";
  (* ...which is why the host iterates ordered maps instead. *)
  check_silent ~rule:"no-unordered-iteration" "lib/cli/event_loop.ml"
    "module M = Map.Make (Int)\n\
     let f m = M.fold (fun _ v acc -> v :: acc) m []";
  check_silent ~rule:"no-unordered-iteration" "lib/cli/event_loop.ml"
    "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h [] (* lint: \
     allow no-unordered-iteration \xe2\x80\x94 fixture *)";
  (* Ordered containers are always fine. *)
  check_silent "lib/net/metrics.ml" "let f m = SMap.fold (fun _ v a -> v + a) m 0"

let test_partial_stdlib () =
  check_fires "no-partial-stdlib" "lib/net/link.ml" "let f l = List.hd l";
  check_fires "no-partial-stdlib" "lib/crypto/mss.ml" "let f l = List.nth l 3";
  check_fires "no-partial-stdlib" "lib/cli/node_store.ml"
    "let f o = Option.get o";
  check_fires "no-partial-stdlib" "lib/net/scenario.ml" "let f l = List.tl l";
  (* Executables and the bench harness may fail fast. *)
  check_silent ~rule:"no-partial-stdlib" "bin/experiments.ml"
    "let f l = List.hd l";
  check_silent "lib/net/link.ml"
    "let f l = Option.value (List.nth_opt l 0) ~default:0"

let test_engine_purity () =
  (* Value identifiers from transport/OS modules. *)
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "let f net = Simnet.send net 0";
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "let f () = Unix.sleep 1";
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "let f net = Vegvisir_net.Simnet.now net";
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "let t () = Unix_compat.now ()";
  (* Module expressions: opens and aliases count as dependencies too. *)
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "open Vegvisir_net\nlet x = 1";
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "module S = Simnet\nlet x = 1";
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    "let f () = let open Unix_compat in now ()";
  (* Console output must leave as a Trace effect instead. *)
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    {|let f () = print_endline "dbg"|};
  check_fires "engine-transport-purity" "lib/engine/peer_engine.ml"
    {|let f () = Printf.printf "%d" 1|};
  (* The chain core and pure pretty-printing stay legal. *)
  check_silent "lib/engine/peer_engine.ml"
    "open Vegvisir\nlet f ppf = Fmt.pf ppf \"ok\"";
  (* The rule scopes to lib/engine only: transports obviously may use
     transports. *)
  check_silent ~rule:"engine-transport-purity" "lib/net/gossip.ml"
    "let f net = Simnet.send net 0";
  check_silent ~rule:"engine-transport-purity" "lib/cli/live_sync.ml"
    "let t () = Unix_compat.now ()"

let test_printf_outside_obs () =
  check_fires "no-printf-outside-obs" "lib/net/gossip.ml"
    {|let f () = print_endline "dbg"|};
  check_fires "no-printf-outside-obs" "lib/core/dag.ml"
    {|let f () = Printf.printf "%d" 1|};
  check_fires "no-printf-outside-obs" "lib/cli/node_store.ml"
    {|let f () = print_string "x"|};
  check_fires "no-printf-outside-obs" "lib/experiments/report.ml"
    {|let f () = print_newline ()|};
  (* lib/obs owns rendering; its sinks may write. *)
  check_silent ~rule:"no-printf-outside-obs" "lib/obs/sink.ml"
    {|let f () = print_string "line"|};
  (* ...but the health fold and renderer return strings, never print. *)
  check_fires "no-printf-outside-obs" "lib/obs/monitor.ml"
    {|let f () = print_endline "dbg"|};
  check_fires "no-printf-outside-obs" "lib/obs/health.ml"
    {|let f () = Printf.printf "%d" 1|};
  check_silent ~rule:"no-printf-outside-obs" "lib/obs/health.ml"
    "let f s = print_string s (* lint: allow no-printf-outside-obs \
     \xe2\x80\x94 fixture *)";
  (* ...likewise the span layer and flight recorder: dumps are strings
     the caller writes, never direct prints. *)
  check_fires "no-printf-outside-obs" "lib/obs/span.ml"
    {|let f () = print_string "{\"trace\":1}"|};
  check_fires "no-printf-outside-obs" "lib/obs/flight.ml"
    {|let f () = Printf.printf "%d events" 3|};
  check_silent ~rule:"no-printf-outside-obs" "lib/obs/flight.ml"
    "let f s = print_string s (* lint: allow no-printf-outside-obs \
     \xe2\x80\x94 fixture *)";
  (* lib/engine console writes are engine-transport-purity's finding. *)
  check_silent ~rule:"no-printf-outside-obs" "lib/engine/peer_engine.ml"
    {|let f () = print_endline "dbg"|};
  (* The event-loop host multiplexes sockets, not the console: session
     telemetry goes through obs events, never stray prints. *)
  check_fires "no-printf-outside-obs" "lib/cli/event_loop.ml"
    {|let f () = print_endline "session done"|};
  check_fires "no-printf-outside-obs" "lib/cli/event_loop.ml"
    {|let f n = Printf.printf "%d active" n|};
  check_silent ~rule:"no-printf-outside-obs" "lib/cli/event_loop.ml"
    {|let f e = prerr_endline e|};
  check_silent ~rule:"no-printf-outside-obs" "lib/cli/event_loop.ml"
    "let f () = print_endline \"drained\" (* lint: allow \
     no-printf-outside-obs \xe2\x80\x94 fixture *)";
  (* Executables own their stdout; the rule scopes to lib/*. *)
  check_silent ~rule:"no-printf-outside-obs" "bin/vegvisir_cli.ml"
    {|let f () = print_endline "ok"|};
  check_silent ~rule:"no-printf-outside-obs" "bench/main.ml"
    {|let f () = Printf.printf "%d" 1|};
  (* stderr is not stdout: diagnostics stay legal. *)
  check_silent "lib/net/gossip.ml" {|let f () = Printf.eprintf "%d" 1|};
  (* A reasoned suppression covers a sanctioned printer. *)
  check_silent "lib/experiments/report.ml"
    "let f s = print_string s (* lint: allow no-printf-outside-obs \
     \xe2\x80\x94 stdout is the contract *)"

let test_full_scan_hot_path () =
  check_fires "no-full-scan-hot-path" "lib/engine/peer_engine.ml"
    "let f dag = Dag.topo_order dag";
  check_fires "no-full-scan-hot-path" "lib/engine/peer_engine.ml"
    "let f dag h = Dag.ancestors dag h";
  check_fires "no-full-scan-hot-path" "lib/core/reconcile.ml"
    "let f dag h = Dag.descendants dag h";
  (* Module aliases and full qualification are caught too. *)
  check_fires "no-full-scan-hot-path" "lib/engine/peer_engine.ml"
    "let f dag = Vegvisir.Dag.topo_order dag";
  check_fires "no-full-scan-hot-path" "lib/engine/peer_engine.ml"
    "let f dag = Dag.Oracle.topo_order dag";
  (* The incremental accessors are the sanctioned replacements. *)
  check_silent ~rule:"no-full-scan-hot-path" "lib/engine/peer_engine.ml"
    "let f dag = Dag.topo_seq dag";
  check_silent ~rule:"no-full-scan-hot-path" "lib/core/reconcile.ml"
    "let f dag hs = Dag.below dag hs";
  (* Strategy responders run on every request: full-replica scans are
     the hot-path mistake the redesign exists to kill. *)
  check_fires "no-full-scan-hot-path" "lib/core/sync_strategy.ml"
    "let f dag = Dag.topo_order dag";
  check_silent ~rule:"no-full-scan-hot-path" "lib/core/sync_strategy.ml"
    "let f dag = Dag.topo_seq dag";
  (* Cold paths (witness oracle, persistence, experiments) are out of
     scope. *)
  check_silent ~rule:"no-full-scan-hot-path" "lib/core/witness.ml"
    "let f dag h = Dag.descendants dag h";
  check_silent ~rule:"no-full-scan-hot-path" "lib/experiments/exp_cluster.ml"
    "let f dag = Dag.topo_order dag";
  (* A reasoned suppression covers an oracle-only site. *)
  check_silent ~rule:"no-full-scan-hot-path" "lib/core/reconcile.ml"
    "let f dag = Dag.topo_order dag (* lint: allow no-full-scan-hot-path \
     \xe2\x80\x94 oracle for the reply filter *)"

let test_suppression () =
  (* Same-line suppression. *)
  check_silent "lib/core/dag.ml"
    "let f a b = a = b (* lint: allow no-poly-compare \xe2\x80\x94 fixture *)";
  (* Standalone suppression covers the following line. *)
  check_silent "lib/core/dag.ml"
    "(* lint: allow no-poly-compare \xe2\x80\x94 fixture *)\nlet f a b = a = b";
  (* ASCII separators work too. *)
  check_silent "lib/core/dag.ml"
    "let f a b = a = b (* lint: allow no-poly-compare -- fixture *)";
  (* A suppression only covers the rules it names... *)
  check_fires "no-global-random" "lib/core/dag.ml"
    "let f a b = a = b && Random.bool () (* lint: allow no-poly-compare \
     \xe2\x80\x94 fixture *)";
  (* ...and only its own line(s). *)
  check_fires "no-poly-compare" "lib/core/dag.ml"
    "(* lint: allow no-poly-compare \xe2\x80\x94 fixture *)\nlet g = ()\n\
     let f a b = a = b";
  (* Reasons are mandatory. *)
  check_fires "lint-suppression" "lib/core/dag.ml"
    "let f a b = a = b (* lint: allow no-poly-compare *)";
  (* Unknown rule names are diagnosed, not silently ignored. *)
  check_fires "lint-suppression" "lib/core/dag.ml"
    "let x = 1 (* lint: allow no-such-rule \xe2\x80\x94 typo *)"

let test_parse_error () =
  check_fires "parse-error" "lib/core/broken.ml" "let let = = in";
  check_silent "lib/core/fine.ml" "let x = 1"

let test_output_format () =
  match lint "lib/core/dag.ml" "let f a b =\n  a = b" with
  | [ f ] ->
    let s = Veglint.Finding.to_string f in
    let prefix = "lib/core/dag.ml:2:4 no-poly-compare " in
    Alcotest.(check bool)
      "file:line:col rule message shape" true
      (String.length s > String.length prefix
      && String.equal (String.sub s 0 (String.length prefix)) prefix)
  | fs ->
    Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Interprocedural analysis                                            *)

let project = Veglint.Driver.lint_project

let find_rule rule fs =
  List.filter (fun (f : Veglint.Finding.t) -> String.equal f.rule rule) fs

let msg_contains needle (f : Veglint.Finding.t) =
  let n = String.length needle and m = String.length f.message in
  let rec go i = i + n <= m && (String.sub f.message i n = needle || go (i + 1)) in
  go 0

(* The acceptance fixture: a wall-clock read laundered through two
   intermediate modules, none of which trips any per-file rule — the
   engine only mentions lib/core, the core hop only mentions lib/cli,
   and the clock itself sits at the one sanctioned per-file call site
   (Unix_compat.now). Only the cross-module effect fixpoint can see
   that the engine entry point reaches the clock. *)
let laundering_files =
  [
    ("lib/cli/unix_compat.ml", "let now () = Unix.gettimeofday ()\n");
    ("lib/cli/wrap_one.ml", "let stamp () = Unix_compat.now ()\n");
    ( "lib/core/timeutil.ml",
      "module W1 = Vegvisir_cli.Wrap_one\nlet tick () = W1.stamp ()\n" );
    ( "lib/engine/entry.ml",
      "open Vegvisir\nlet step () = Timeutil.tick ()\n" );
  ]

let engine_manifest =
  ( "lint-boundaries.sexp",
    "(boundary engine (scope lib/engine) (forbid clock random io))\n" )

let test_effect_laundering () =
  (* Per-file rules alone are blind to the chain. *)
  Alcotest.(check (list string))
    "per-file rules see nothing" []
    (rules_of (project laundering_files));
  (* The boundary analysis reports the entry point with the full witness
     chain down to the primitive. *)
  let fs = project ~manifest:engine_manifest laundering_files in
  match find_rule "boundary-purity" fs with
  | [ f ] ->
    Alcotest.(check string) "at the engine entry" "lib/engine/entry.ml" f.file;
    Alcotest.(check string) "stable key" "engine clock Vegvisir_engine.Entry.step" f.key;
    Alcotest.(check bool) "full witness chain" true
      (msg_contains
         "Vegvisir_engine.Entry.step -> Vegvisir.Timeutil.tick -> \
          Vegvisir_cli.Wrap_one.stamp -> Vegvisir_cli.Unix_compat.now -> \
          Unix.gettimeofday"
         f)
  | fs -> Alcotest.failf "expected one boundary-purity finding, got %d" (List.length fs)

let test_fixpoint_mutual_recursion () =
  (* A clock read inside a mutually recursive pair: the SCC fixpoint
     must assign the effect to every member of the cycle and to callers
     of the cycle, and must terminate. *)
  let files =
    [
      ( "lib/net/loopy.ml",
        "let rec ping n = if n = 0 then 0 else pong (n - 1)\n\
         and pong n = ping (n - 1) + int_of_float (Unix.gettimeofday ())\n\
         let outsider () = ping 3\n" );
    ]
  in
  let manifest =
    ("m.sexp", "(boundary net (scope lib/net) (forbid clock))\n")
  in
  let fs = find_rule "boundary-purity" (project ~manifest files) in
  let flagged =
    List.sort String.compare
      (List.map (fun (f : Veglint.Finding.t) -> f.key) fs)
  in
  Alcotest.(check (list string))
    "every cycle member and caller is flagged"
    [
      "net clock Vegvisir_net.Loopy.outsider";
      "net clock Vegvisir_net.Loopy.ping";
      "net clock Vegvisir_net.Loopy.pong";
    ]
    flagged;
  (* The chain from outside the cycle passes through it to the prim. *)
  match
    List.find_opt
      (fun (f : Veglint.Finding.t) ->
        f.key = "net clock Vegvisir_net.Loopy.outsider")
      fs
  with
  | Some f ->
    Alcotest.(check bool) "witness chain through the cycle" true
      (msg_contains "Vegvisir_net.Loopy.outsider -> " f
      && msg_contains "Unix.gettimeofday" f)
  | None -> Alcotest.fail "outsider finding missing"

let test_manifest_errors () =
  let files = [ ("lib/net/a.ml", "let x = 1\n") ] in
  let check_error manifest_src expected =
    let fs =
      find_rule "boundary-manifest"
        (project ~manifest:("m.sexp", manifest_src) files)
    in
    Alcotest.(check bool)
      (Printf.sprintf "manifest error %S" expected)
      true
      (List.exists (msg_contains expected) fs)
  in
  check_error "(boundary x (scope lib/net))" "no (forbid ...)";
  check_error "(boundary x (forbid clock))" "no (scope ...)";
  check_error "(boundary x (scope lib/net) (forbid entropy))"
    "unknown effect \"entropy\"";
  check_error "(boundary x (scope lib/net) (forbid clock)"
    "unclosed parenthesis";
  check_error "stray" "expected a (boundary ...) form";
  (* A malformed boundary doesn't disable a well-formed one. *)
  let fs =
    project
      ~manifest:
        ( "m.sexp",
          "(boundary bad (scope lib/net))\n\
           (boundary good (scope lib/net) (forbid clock))\n" )
      [ ("lib/net/a.ml", "let t () = Unix.gettimeofday ()\n") ]
  in
  Alcotest.(check bool) "good boundary still applies" true
    (find_rule "boundary-purity" fs <> [])

let test_parallel_safety () =
  (* An annotated function reaching a top-level Hashtbl through a
     helper is flagged, with the chain ending at the state itself. *)
  let bad =
    "let table : (string, int) Hashtbl.t = Hashtbl.create 8\n\
     let lookup k = Hashtbl.find_opt table k\n\n\
     (* lint: parallel-safe *)\n\
     let hash k = lookup k\n"
  in
  (match find_rule "parallel-safety" (lint "lib/crypto/cachey.ml" bad) with
  | [ f ] ->
    Alcotest.(check int) "at the annotated definition" 5 f.line;
    Alcotest.(check bool) "chain ends at the state" true
      (msg_contains
         "Vegvisir_crypto.Cachey.hash -> Vegvisir_crypto.Cachey.lookup -> \
          Vegvisir_crypto.Cachey.table -> top-level Hashtbl.t"
         f)
  | fs ->
    Alcotest.failf "expected one parallel-safety finding, got %d"
      (List.length fs));
  (* A top-level array that is never written is a constant table, not
     shared mutable state (e.g. Sha256.k). *)
  check_silent ~rule:"parallel-safety" "lib/crypto/consty.ml"
    "let k = [| 1; 2; 3 |]\n\n(* lint: parallel-safe *)\nlet f i = k.(i)\n";
  (* One write anywhere in the tree promotes it back. *)
  check_fires "parallel-safety" "lib/crypto/consty.ml"
    "let k = [| 1; 2; 3 |]\nlet poke i v = k.(i) <- v\n\n\
     (* lint: parallel-safe *)\nlet f i = k.(i)\n";
  (* Unannotated functions may touch whatever they like. *)
  check_silent ~rule:"parallel-safety" "lib/crypto/cachey.ml"
    "let table : (string, int) Hashtbl.t = Hashtbl.create 8\n\
     let lookup k = Hashtbl.find_opt table k\n"

(* The span-codec boundary shipped with the span layer: lib/obs/span.ml
   must stay pure (no clock, no randomness, no io, no unordered
   iteration, no global mutable state) so span ids are deterministic and
   same-seed runs journal byte-identical span streams. *)
let test_span_codec_boundary () =
  let manifest =
    ( "lint-boundaries.sexp",
      "(boundary span-codec (scope lib/obs/span.ml) (forbid clock random io \
       unordered_iter mutates_global))\n" )
  in
  let span_findings src =
    find_rule "boundary-purity" (project ~manifest [ ("lib/obs/span.ml", src) ])
  in
  (* Silent: pure derivation code. *)
  Alcotest.(check int)
    "pure span code passes" 0
    (List.length (span_findings "let derive a b = a ^ \":\" ^ b\n"));
  (* Fires: each forbidden effect class, at the entry point. *)
  List.iter
    (fun (label, src) ->
      Alcotest.(check bool) (label ^ " fires in span.ml") true
        (span_findings src <> []))
    [
      ("clock", "let now_span () = Unix.gettimeofday ()\n");
      ("random", "let random_id () = Random.bits ()\n");
      ("io", "let dump s = print_string s\n");
      ("unordered_iter", "let walk h = Hashtbl.iter (fun _ _ -> ()) h\n");
      ("mutates_global", "let seq = ref 0\nlet next () = incr seq; !seq\n");
    ];
  (* The scope is the one file: a sibling obs module is untouched. *)
  Alcotest.(check int)
    "sibling obs file out of scope" 0
    (List.length
       (find_rule "boundary-purity"
          (project ~manifest
             [ ("lib/obs/other.ml", "let now () = Unix.gettimeofday ()\n") ])));
  (* A reasoned suppression at the entry point is honoured. *)
  Alcotest.(check int)
    "suppression honoured" 0
    (List.length
       (span_findings
          "(* lint: allow boundary-purity \xe2\x80\x94 fixture *)\n\
           let dump s = print_string s\n"))

let test_baseline () =
  (* A baselined finding disappears; the baseline's own diagnostics
     surface as lint-baseline findings. *)
  let baseline_ok =
    ( "lint-baseline.txt",
      "# reviewed 2026-08\n\
       boundary-purity engine clock Vegvisir_engine.Entry.step\n" )
  in
  Alcotest.(check (list string))
    "baselined finding filtered" []
    (rules_of
       (project ~manifest:engine_manifest ~baseline:baseline_ok
          laundering_files));
  (* A stale entry is reported at its own line. *)
  let baseline_stale =
    ( "lint-baseline.txt",
      "boundary-purity engine clock Vegvisir_engine.Entry.step\n\
       boundary-purity engine io Vegvisir_engine.Entry.gone\n" )
  in
  (match
     find_rule "lint-baseline"
       (project ~manifest:engine_manifest ~baseline:baseline_stale
          laundering_files)
   with
  | [ f ] ->
    Alcotest.(check int) "stale entry line" 2 f.line;
    Alcotest.(check bool) "stale message" true (msg_contains "stale" f)
  | fs ->
    Alcotest.failf "expected one lint-baseline finding, got %d"
      (List.length fs));
  (* Malformed entries are diagnosed. *)
  let fs =
    find_rule "lint-baseline"
      (project
         ~baseline:("lint-baseline.txt", "no-such-rule some key\n")
         [ ("lib/net/a.ml", "let x = 1\n") ])
  in
  Alcotest.(check bool) "unknown rule diagnosed" true
    (List.exists (msg_contains "unknown rule") fs)

let test_multiline_suppression () =
  (* A trailing suppression on any line a multi-line application spans
     covers the finding... *)
  check_silent ~rule:"no-unordered-iteration" "lib/core/wire.ml"
    "let f h =\n  Hashtbl.iter\n    (fun _ _ -> ())\n    h (* lint: allow \
     no-unordered-iteration \xe2\x80\x94 fixture *)\n";
  (* ...as does one trailing on the line just above the expression. *)
  check_silent ~rule:"no-unordered-iteration" "lib/core/wire.ml"
    "let f h = (* lint: allow no-unordered-iteration \xe2\x80\x94 fixture \
     *)\n  Hashtbl.iter\n    (fun _ _ -> ())\n    h\n";
  (* Single-line findings keep the strict same-line/line-above rule. *)
  check_fires "no-unordered-iteration" "lib/core/wire.ml"
    "let g h = Hashtbl.iter (fun _ _ -> ()) h (* lint: allow \
     no-unordered-iteration \xe2\x80\x94 wrong line *)\nlet i = 1\n\
     let f h = Hashtbl.iter (fun _ _ -> ()) h\n"

let test_dead_suppression () =
  (* A suppression matching no finding is itself a finding. *)
  (match
     find_rule "lint-suppression"
       (lint "lib/core/dag.ml"
          "let x = 1 (* lint: allow no-poly-compare \xe2\x80\x94 stale *)\n")
   with
  | [ f ] ->
    Alcotest.(check bool) "dead suppression reported" true
      (msg_contains "matches no finding" f)
  | fs ->
    Alcotest.failf "expected one lint-suppression finding, got %d"
      (List.length fs));
  (* A live suppression is not dead. *)
  check_silent "lib/core/dag.ml"
    "let f a b = a = b (* lint: allow no-poly-compare \xe2\x80\x94 fixture *)"

let test_json_determinism () =
  (* Byte-identical output across two full runs on the same inputs. *)
  let render () =
    Veglint.Driver.render_json
      ~files:(List.length laundering_files)
      (project ~manifest:engine_manifest laundering_files)
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical across runs" a b;
  Alcotest.(check bool) "document shape" true
    (String.length a > 2
    && String.sub a 0 1 = "{"
    && String.sub a (String.length a - 1) 1 = "\n");
  (* Escaping keeps the document well-formed. *)
  let f =
    Veglint.Finding.v ~file:"a \"b\".ml" ~line:1 ~col:0 ~rule:"parse-error"
      "tab\there"
  in
  Alcotest.(check string) "escaped"
    "{\"file\": \"a \\\"b\\\".ml\", \"line\": 1, \"col\": 0, \"rule\": \
     \"parse-error\", \"message\": \"tab\\there\"}"
    (Veglint.Finding.to_json f)

let test_mli_coverage () =
  (* lint_file needs a real filesystem; build a fake lib/ in the test's
     sandbox cwd. *)
  let dir = "fake_root/lib/core" in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdir_p dir;
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  let uncovered = Filename.concat dir "uncovered.ml" in
  let covered = Filename.concat dir "covered.ml" in
  write uncovered "let x = 1\n";
  write covered "let x = 1\n";
  write (covered ^ "i") "val x : int\n";
  Alcotest.(check bool)
    "mli-coverage fires without .mli" true
    (List.exists
       (fun (f : Veglint.Finding.t) -> String.equal f.rule "mli-coverage")
       (Veglint.Driver.lint_file uncovered));
  Alcotest.(check (list string))
    "silent with .mli" []
    (rules_of (Veglint.Driver.lint_file covered));
  (* collect_files only picks up .ml sources, sorted. *)
  Alcotest.(check (list string))
    "collect_files" [ covered; uncovered ]
    (Veglint.Driver.collect_files [ "fake_root" ])

let () =
  Alcotest.run "vegvisir-lint"
    [
      ( "rules",
        [
          Alcotest.test_case "no-wall-clock" `Quick test_wall_clock;
          Alcotest.test_case "no-global-random" `Quick test_global_random;
          Alcotest.test_case "no-poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "no-unordered-iteration" `Quick
            test_unordered_iteration;
          Alcotest.test_case "no-partial-stdlib" `Quick test_partial_stdlib;
          Alcotest.test_case "engine-transport-purity" `Quick test_engine_purity;
          Alcotest.test_case "no-printf-outside-obs" `Quick
            test_printf_outside_obs;
          Alcotest.test_case "no-full-scan-hot-path" `Quick
            test_full_scan_hot_path;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "suppressions" `Quick test_suppression;
          Alcotest.test_case "multiline suppressions" `Quick
            test_multiline_suppression;
          Alcotest.test_case "dead suppressions" `Quick test_dead_suppression;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "output format" `Quick test_output_format;
          Alcotest.test_case "json determinism" `Quick test_json_determinism;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "effect laundering" `Quick test_effect_laundering;
          Alcotest.test_case "fixpoint on mutual recursion" `Quick
            test_fixpoint_mutual_recursion;
          Alcotest.test_case "manifest errors" `Quick test_manifest_errors;
          Alcotest.test_case "parallel safety" `Quick test_parallel_safety;
          Alcotest.test_case "span-codec boundary" `Quick
            test_span_codec_boundary;
          Alcotest.test_case "baseline" `Quick test_baseline;
        ] );
    ]
