(* Unit and property tests for the sans-IO peer engine: scripted-pipe
   reconciliation against the reference Reconcile.sync_dags, adversarial
   transports (lost / duplicated / reordered replies), retry exhaustion,
   session timeouts and stale generations, the Silent / Withholding
   policies, the typed timer-key codec, and trace-replay equality between
   the Simnet adapter and a scripted driver fed the same inputs. *)

open Vegvisir
module Peer_engine = Vegvisir_engine.Peer_engine
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let ts ms = Timestamp.of_ms (Int64.of_int ms)

(* ------------------------------------------------------------------ *)
(* Fixtures: an owner (CA) and two members with oracle keys.            *)

let owner_signer = Signer.oracle ~signature_size:64 ~id:"owner" ()
let owner_cert = Certificate.self_signed ~signer:owner_signer ~role:"ca"
let alice_signer = Signer.oracle ~signature_size:64 ~id:"alice" ()

let alice_cert =
  Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer ~subject:alice_signer
    ~role:"member"

let bob_signer = Signer.oracle ~signature_size:64 ~id:"bob" ()

let bob_cert =
  Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer ~subject:bob_signer
    ~role:"member"

let log_spec = Schema.spec Schema.Gset Value.T_string

let genesis =
  Node.genesis_block ~signer:owner_signer ~cert:owner_cert ~timestamp:(ts 0)
    ~extra:
      [
        Transaction.create_crdt ~name:"log" log_spec;
        Transaction.add_user alice_cert;
        Transaction.add_user bob_cert;
      ]
    ()

let fresh_node signer cert =
  let n = Node.create ~signer ~cert () in
  (match Node.receive n ~now:(ts 1) genesis with
  | Node.Accepted -> ()
  | r -> Alcotest.failf "genesis not accepted: %a" Node.pp_receive_result r);
  n

let add_tx entry = Transaction.make ~crdt:"log" ~op:"add" [ Value.String entry ]

let append node ~ms entry =
  match Node.append node ~now:(ts ms) [ add_tx entry ] with
  | Ok b -> b
  | Error e -> Alcotest.failf "append %s: %a" entry Node.pp_append_error e

(* The divergent pair every reconciliation test pulls between: [behind]
   holds only the genesis; [ahead] (bob's replica) additionally holds one
   block of bob's own and two of alice's. *)
let ahead_node, ahead_own_block, ahead_foreign_blocks =
  let alice = fresh_node alice_signer alice_cert in
  let bob = fresh_node bob_signer bob_cert in
  let b1 = append bob ~ms:50 "from-bob" in
  let a1 = append alice ~ms:100 "from-alice-1" in
  (match Node.receive bob ~now:(ts 150) a1 with
  | Node.Accepted -> ()
  | r -> Alcotest.failf "a1 not accepted: %a" Node.pp_receive_result r);
  let a2 = append alice ~ms:200 "from-alice-2" in
  (match Node.receive bob ~now:(ts 250) a2 with
  | Node.Accepted -> ()
  | r -> Alcotest.failf "a2 not accepted: %a" Node.pp_receive_result r);
  (bob, b1, [ a1; a2 ])

let behind_node = fresh_node owner_signer owner_cert

let encode_msg m =
  let b = Buffer.create 256 in
  Reconcile.encode_message b m;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scripted transport: two engines joined by an in-memory pipe          *)

type outcome = {
  dag : Dag.t;  (** the puller's final replica *)
  stats : Reconcile.stats option;
  aborted : Peer_engine.abort_reason option;
  events : Peer_engine.event list;  (** in emission order *)
}

let sends effs =
  List.filter_map
    (function
      | Peer_engine.Send { bytes; _ } -> Some bytes
      | Peer_engine.Set_timer _ | Peer_engine.Deliver _
      | Peer_engine.Session_done _ | Peer_engine.Trace _ ->
        None)
    effs

(* One pull session from a fresh engine on [a_node]'s replica against a
   fresh responder engine on [b_node]'s. [mangle] sees each round's reply
   frames and returns what the transport actually delivers — identity by
   default; tests drop, duplicate, and reorder through it. A quiet round
   advances the clock past the staleness threshold and runs the engine's
   retransmit/abandon housekeeping, so lost frames exercise the real
   retry machinery. *)
let scripted_pull ?(mode = Reconcile.Naive) ?(mangle = fun ~round:_ frames -> frames)
    ?(b_policy = Peer_engine.Honest) ~a_node ~b_node () =
  let a_dag = ref (Node.dag a_node) in
  let b_dag = Node.dag b_node in
  let a =
    ref
      (Peer_engine.create
         ~config:{ Peer_engine.Config.default with Peer_engine.Config.mode }
         ~user_id:(Node.user_id a_node) ~dag:!a_dag ())
  in
  let b =
    ref
      (Peer_engine.create
         ~config:
           {
             Peer_engine.Config.default with
             Peer_engine.Config.mode;
             policy = b_policy;
           }
         ~user_id:(Node.user_id b_node) ~dag:b_dag ())
  in
  let now = ref 0. in
  let stats = ref None and aborted = ref None and events = ref [] in
  let step_a input =
    let a', effs = Peer_engine.handle !a ~now:!now ~dag:!a_dag input in
    a := a';
    List.iter
      (fun (e : Peer_engine.effect_) ->
        match e with
        | Peer_engine.Deliver blocks ->
          List.iter
            (fun blk ->
              match Dag.add !a_dag blk with
              | Ok d -> a_dag := d
              | Error _ -> Alcotest.fail "Deliver violated parents-first order")
            blocks
        | Peer_engine.Session_done s -> stats := Some s
        | Peer_engine.Trace ev ->
          events := ev :: !events;
          (match ev with
          | Peer_engine.Session_aborted { reason; _ } -> aborted := Some reason
          | Peer_engine.Session_started _ | Peer_engine.Request_resent _
          | Peer_engine.Session_completed _ | Peer_engine.Request_suppressed _
          | Peer_engine.Reply_ignored _ | Peer_engine.Decode_failed _
          | Peer_engine.Blocks_served _ | Peer_engine.Redundant_received _
          | Peer_engine.Blocks_suppressed _ | Peer_engine.Peer_advertised _
          | Peer_engine.Trace_context_sent _
          | Peer_engine.Trace_context_received _ ->
            ())
        | Peer_engine.Send _ | Peer_engine.Set_timer _ -> ())
      effs;
    sends effs
  in
  let step_b input =
    let b', effs = Peer_engine.handle !b ~now:!now ~dag:b_dag input in
    b := b';
    sends effs
  in
  let rec loop round requests =
    if Option.is_some !stats || Option.is_some !aborted then ()
    else if round > 60 then Alcotest.fail "scripted session did not terminate"
    else begin
      let replies =
        List.concat_map
          (fun r -> step_b (Peer_engine.Message_received { from = 0; bytes = r }))
          requests
      in
      let frames = mangle ~round replies in
      now := !now +. 250.;
      let next =
        List.concat_map
          (fun f -> step_a (Peer_engine.Message_received { from = 1; bytes = f }))
          frames
      in
      let next =
        if next = [] && Option.is_none !stats && Option.is_none !aborted then begin
          now := !now +. 6_000.;
          step_a (Peer_engine.Tick { peer = None })
        end
        else next
      in
      loop (round + 1) next
    end
  in
  loop 0 (step_a (Peer_engine.Tick { peer = Some 1 }));
  { dag = !a_dag; stats = !stats; aborted = !aborted; events = List.rev !events }

let frontier_eq a b = Hash_id.Set.equal (Dag.frontier a) (Dag.frontier b)

let reference_merge mode =
  fst (Reconcile.sync_dags mode (Node.dag behind_node) (Node.dag ahead_node))

(* ------------------------------------------------------------------ *)
(* Clean transport: engine == Reconcile.sync_dags, in all three modes   *)

let scripted_matches_sync_dags () =
  List.iter
    (fun mode ->
      let o = scripted_pull ~mode ~a_node:behind_node ~b_node:ahead_node () in
      check_b "completed" true (Option.is_some o.stats);
      check_b "merged like sync_dags" true (frontier_eq o.dag (reference_merge mode));
      (* Same protocol core, so the session statistics agree exactly. *)
      let _, ref_stats =
        Reconcile.sync_dags mode (Node.dag behind_node) (Node.dag ahead_node)
      in
      (match o.stats with
      | Some s -> check_b "stats agree" true (Reconcile.stats_equal s ref_stats)
      | None -> ());
      check_b "no spurious abort" true (Option.is_none o.aborted))
    [ Reconcile.Naive; Reconcile.Indexed; Reconcile.Bloom; Reconcile.Digest ]

(* ------------------------------------------------------------------ *)
(* Adversarial transports                                               *)

let has_resent events =
  List.exists
    (function
      | Peer_engine.Request_resent _ -> true
      | Peer_engine.Session_started _ | Peer_engine.Session_completed _
      | Peer_engine.Session_aborted _ | Peer_engine.Request_suppressed _
      | Peer_engine.Reply_ignored _ | Peer_engine.Decode_failed _
      | Peer_engine.Blocks_served _ | Peer_engine.Redundant_received _
          | Peer_engine.Blocks_suppressed _ | Peer_engine.Peer_advertised _
          | Peer_engine.Trace_context_sent _
          | Peer_engine.Trace_context_received _ ->
        false)
    events

let lost_reply_recovers () =
  let mangle ~round frames = if round = 0 then [] else frames in
  let o =
    scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node ()
  in
  check_b "completed after loss" true (Option.is_some o.stats);
  check_b "retransmitted" true (has_resent o.events);
  check_b "still converges" true (frontier_eq o.dag (reference_merge Reconcile.Naive))

let duplicated_replies_ignored () =
  let mangle ~round:_ frames = List.concat_map (fun f -> [ f; f ]) frames in
  let o =
    scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node ()
  in
  check_b "completed" true (Option.is_some o.stats);
  check_b "converged despite duplicates" true
    (frontier_eq o.dag (reference_merge Reconcile.Naive));
  (* The duplicate of the final reply lands after the session closed. *)
  check_b "post-session duplicate traced" true
    (List.exists
       (function
         | Peer_engine.Reply_ignored _ -> true
         | Peer_engine.Session_started _ | Peer_engine.Request_resent _
         | Peer_engine.Session_completed _ | Peer_engine.Session_aborted _
         | Peer_engine.Request_suppressed _ | Peer_engine.Decode_failed _
         | Peer_engine.Blocks_served _ | Peer_engine.Redundant_received _
          | Peer_engine.Blocks_suppressed _ | Peer_engine.Peer_advertised _
          | Peer_engine.Trace_context_sent _
          | Peer_engine.Trace_context_received _ ->
           false)
       o.events)

let reordered_replies_recover () =
  (* Hold round 0's reply back and deliver it late, after the reply to
     the retransmitted request — newest first. *)
  let stash = ref [] in
  let mangle ~round frames =
    if round = 0 then begin
      stash := frames;
      []
    end
    else begin
      let out = List.rev (!stash @ frames) in
      stash := [];
      out
    end
  in
  let o =
    scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node ()
  in
  check_b "completed" true (Option.is_some o.stats);
  check_b "converged despite reordering" true
    (frontier_eq o.dag (reference_merge Reconcile.Naive))

let garbage_frame_traced () =
  let mangle ~round:_ frames = "\xff\xfenot-a-message" :: frames in
  let o =
    scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node ()
  in
  check_b "completed" true (Option.is_some o.stats);
  check_b "decode failure traced" true
    (List.exists
       (function
         | Peer_engine.Decode_failed _ -> true
         | Peer_engine.Session_started _ | Peer_engine.Request_resent _
         | Peer_engine.Session_completed _ | Peer_engine.Session_aborted _
         | Peer_engine.Request_suppressed _ | Peer_engine.Reply_ignored _
         | Peer_engine.Blocks_served _ | Peer_engine.Redundant_received _
          | Peer_engine.Blocks_suppressed _ | Peer_engine.Peer_advertised _
          | Peer_engine.Trace_context_sent _
          | Peer_engine.Trace_context_received _ ->
           false)
       o.events)

let retry_exhaustion_aborts () =
  let mangle ~round:_ _frames = [] in
  let o =
    scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node ()
  in
  check_b "no completion" true (Option.is_none o.stats);
  (match o.aborted with
  | Some Peer_engine.Stalled -> ()
  | Some Peer_engine.Timed_out -> Alcotest.fail "expected Stalled, got Timed_out"
  | None -> Alcotest.fail "expected the session to be abandoned");
  let resent =
    List.length
      (List.filter
         (function
           | Peer_engine.Request_resent _ -> true
           | Peer_engine.Session_started _ | Peer_engine.Session_completed _
           | Peer_engine.Session_aborted _ | Peer_engine.Request_suppressed _
           | Peer_engine.Reply_ignored _ | Peer_engine.Decode_failed _
           | Peer_engine.Blocks_served _ | Peer_engine.Redundant_received _
          | Peer_engine.Blocks_suppressed _ | Peer_engine.Peer_advertised _
          | Peer_engine.Trace_context_sent _
          | Peer_engine.Trace_context_received _ ->
             false)
         o.events)
  in
  check_i "spent the whole retransmit budget" 3 resent;
  check_b "replica untouched" true (frontier_eq o.dag (Node.dag behind_node))

(* Random drop/duplicate transport: every run must either complete with
   the reference merge or abandon honestly — never crash, never
   half-apply. *)
let qcheck_random_transport =
  QCheck.Test.make ~count:40 ~name:"random lossy transport converges or aborts"
    QCheck.(int_bound 9999)
    (fun seed ->
      let rng = Vegvisir_crypto.Rng.create (Int64.of_int (seed + 1)) in
      let mangle ~round:_ frames =
        List.concat_map
          (fun f ->
            match Vegvisir_crypto.Rng.int rng 4 with
            | 0 -> [] (* lost *)
            | 1 -> [ f; f ] (* duplicated *)
            | _ -> [ f ])
          frames
      in
      let o = scripted_pull ~mangle ~a_node:behind_node ~b_node:ahead_node () in
      match (o.stats, o.aborted) with
      | Some _, _ -> frontier_eq o.dag (reference_merge Reconcile.Naive)
      | None, Some Peer_engine.Stalled ->
        frontier_eq o.dag (Node.dag behind_node)
      | None, (Some Peer_engine.Timed_out | None) -> false)

(* ------------------------------------------------------------------ *)
(* Timeouts and stale generations                                       *)

let session_dag = Node.dag behind_node

let start_session engine ~now =
  let engine, effs =
    Peer_engine.handle engine ~now ~dag:session_dag
      (Peer_engine.Tick { peer = Some 1 })
  in
  check_b "session started" true (Peer_engine.busy engine);
  check_i "sent the first request" 1 (List.length (sends effs));
  engine

let timeout_aborts_session () =
  let e =
    Peer_engine.create ~user_id:(Node.user_id behind_node) ~dag:session_dag ()
  in
  let e = start_session e ~now:0. in
  let gen = Peer_engine.generation e in
  let e, effs =
    Peer_engine.handle e ~now:31_000. ~dag:session_dag
      (Peer_engine.Timer_fired (Peer_engine.Session_timeout { generation = gen }))
  in
  check_b "no longer busy" false (Peer_engine.busy e);
  check_b "aborted as timed out" true
    (List.exists
       (Peer_engine.effect_equal
          (Peer_engine.Trace
             (Peer_engine.Session_aborted
                { dst = 1; generation = gen; reason = Peer_engine.Timed_out })))
       effs)

let stale_generation_timer_ignored () =
  let e =
    Peer_engine.create ~user_id:(Node.user_id behind_node) ~dag:session_dag ()
  in
  let e = start_session e ~now:0. in
  let old_gen = Peer_engine.generation e in
  (* Abort it, start a new session; the first session's timer then fires
     late and must not kill the new session. *)
  let e, _ =
    Peer_engine.handle e ~now:1_000. ~dag:session_dag
      (Peer_engine.Timer_fired
         (Peer_engine.Session_timeout { generation = old_gen }))
  in
  let e = start_session e ~now:2_000. in
  check_i "fresh generation" (old_gen + 1) (Peer_engine.generation e);
  let e', effs =
    Peer_engine.handle e ~now:3_000. ~dag:session_dag
      (Peer_engine.Timer_fired
         (Peer_engine.Session_timeout { generation = old_gen }))
  in
  check_b "still busy" true (Peer_engine.busy e');
  check_i "no effects for a stale timer" 0 (List.length effs)

(* ------------------------------------------------------------------ *)
(* Policies (§IV-B)                                                     *)

let a_request () =
  encode_msg (Reconcile.Frontier_request { level = 1 })

(* Shared driver for the knowledge-cache tests: a responder engine on
   [ahead]'s replica with the cache enabled, fed raw frames from peer 0. *)
let cache_responder () =
  let ahead = Node.dag ahead_node in
  let responder =
    ref
      (Peer_engine.create
         ~config:
           {
             Peer_engine.Config.default with
             Peer_engine.Config.mode = Reconcile.Indexed;
             knowledge_cache = 1024;
           }
         ~user_id:(Node.user_id ahead_node) ~dag:ahead ())
  in
  let serve bytes =
    let r', effs =
      Peer_engine.handle !responder ~now:0. ~dag:ahead
        (Peer_engine.Message_received { from = 0; bytes })
    in
    responder := r';
    effs
  in
  (responder, serve)

let served_of effs =
  List.concat_map
    (fun (e : Peer_engine.effect_) ->
      match e with
      | Peer_engine.Trace (Peer_engine.Blocks_served { blocks; _ }) -> blocks
      | _ -> [])
    effs

let suppressed_of effs =
  List.concat_map
    (fun (e : Peer_engine.effect_) ->
      match e with
      | Peer_engine.Trace (Peer_engine.Blocks_suppressed { blocks; _ }) -> blocks
      | _ -> [])
    effs

(* The per-peer knowledge cache is fed by receive-side evidence: hashes
   a peer's own requests prove it holds are stripped from later sweep
   replies, traced as Blocks_suppressed. *)
let knowledge_cache_suppresses_proven () =
  let responder, serve = cache_responder () in
  let frontier = Hash_id.Set.elements (Dag.frontier (Node.dag ahead_node)) in
  check_b "fixture has frontier blocks" true (frontier <> []);
  (* Peer 0's indexed request advertises that it already holds our whole
     frontier; the reply ships nothing, and the cache learns the claim. *)
  let effs1 =
    serve (encode_msg (Reconcile.Sync_request { frontier; recent = [] }))
  in
  check_b "in-sync indexed pull ships nothing" true (served_of effs1 = []);
  let known = Peer_engine.known_to !responder ~peer:0 in
  check_b "cache learned the advertised hashes" true
    (List.for_all (fun h -> List.exists (Hash_id.equal h) known) frontier);
  (* A naive pull from the same peer would re-ship exactly those
     frontier blocks; the cache strips them all. *)
  let effs2 = serve (encode_msg (Reconcile.Frontier_request { level = 1 })) in
  check_b "proven blocks not re-shipped" true (served_of effs2 = []);
  let dropped = suppressed_of effs2 in
  check_i "suppressed exactly the proven set" (List.length frontier)
    (List.length dropped);
  check_b "suppressed set = proven set" true
    (List.for_all (fun h -> List.exists (Hash_id.equal h) frontier) dropped)

(* An explicit Blocks_request is positive proof the sender lacks those
   blocks: it bypasses the suppression filter AND retracts the hashes
   from the cache — a peer re-requesting a block the cache attributes
   to it (pending-pool eviction, a lost earlier reply) must get it. *)
let explicit_fetch_overrides_cache () =
  let responder, serve = cache_responder () in
  let frontier = Hash_id.Set.elements (Dag.frontier (Node.dag ahead_node)) in
  let _ = serve (encode_msg (Reconcile.Sync_request { frontier; recent = [] })) in
  let h = ahead_own_block.Block.hash in
  check_b "fetched hash is cached as held" true
    (List.exists (Hash_id.equal h) (Peer_engine.known_to !responder ~peer:0));
  let effs = serve (encode_msg (Reconcile.Blocks_request { hashes = [ h ] })) in
  check_b "explicit fetch served despite the cache" true
    (List.exists (Hash_id.equal h) (served_of effs));
  check_b "nothing suppressed on an explicit fetch" true
    (suppressed_of effs = []);
  check_b "fetch retracted the cached attribution" true
    (not (List.exists (Hash_id.equal h) (Peer_engine.known_to !responder ~peer:0)))

(* Shipping a reply is NOT evidence of delivery: served blocks stay out
   of the cache, so a retransmitted request after a lost reply gets the
   full payload again instead of a fully-suppressed empty reply. *)
let serving_leaves_cache_unconfirmed () =
  let responder, serve = cache_responder () in
  let request =
    let _s, m = Reconcile.start Reconcile.Indexed (Node.dag behind_node) in
    encode_msg m
  in
  let effs1 = serve request in
  let served = served_of effs1 in
  check_b "first reply ships blocks" true (served <> []);
  check_b "nothing suppressed on first contact" true (suppressed_of effs1 = []);
  let known = Peer_engine.known_to !responder ~peer:0 in
  check_b "served blocks not attributed at send time" true
    (not (List.exists (fun h -> List.exists (Hash_id.equal h) known) served));
  (* The identical request again — the initiator's retransmission after
     a lost reply — must be answered in full. *)
  let effs2 = serve request in
  check_i "retransmission re-served in full" (List.length served)
    (List.length (served_of effs2));
  check_b "retransmission suppresses nothing" true (suppressed_of effs2 = [])

(* With the cache off (the default), a repeated pull re-ships everything
   and no suppression trace ever appears â the legacy behavior. *)
let knowledge_cache_off_is_legacy () =
  let behind = Node.dag behind_node in
  let ahead = Node.dag ahead_node in
  let responder =
    ref
      (Peer_engine.create
         ~config:
           {
             Peer_engine.Config.default with
             Peer_engine.Config.mode = Reconcile.Indexed;
           }
         ~user_id:(Node.user_id ahead_node) ~dag:ahead ())
  in
  let request =
    let _s, m = Reconcile.start Reconcile.Indexed behind in
    encode_msg m
  in
  let serve bytes =
    let r', effs =
      Peer_engine.handle !responder ~now:0. ~dag:ahead
        (Peer_engine.Message_received { from = 0; bytes })
    in
    responder := r';
    effs
  in
  let count_served effs =
    List.fold_left
      (fun acc (e : Peer_engine.effect_) ->
        match e with
        | Peer_engine.Trace (Peer_engine.Blocks_served { blocks; _ }) ->
          acc + List.length blocks
        | Peer_engine.Trace (Peer_engine.Blocks_suppressed _) ->
          Alcotest.fail "suppression with the cache off"
        | _ -> acc)
      0 effs
  in
  let first = count_served (serve request) in
  let second = count_served (serve request) in
  check_b "served blocks both times" true (first > 0);
  check_i "identical re-serve" first second;
  check_b "no knowledge recorded" true
    (Peer_engine.known_to !responder ~peer:0 = [])

let silent_policy () =
  let e =
    Peer_engine.create
      ~config:
        {
          Peer_engine.Config.default with
          Peer_engine.Config.policy = Peer_engine.Silent;
        }
      ~user_id:(Node.user_id ahead_node) ~dag:(Node.dag ahead_node) ()
  in
  check_b "never initiates" false (Peer_engine.will_initiate e ~now:0.);
  let e, effs =
    Peer_engine.handle e ~now:0. ~dag:(Node.dag ahead_node)
      (Peer_engine.Tick { peer = Some 1 })
  in
  check_b "no session" false (Peer_engine.busy e);
  check_i "no frames" 0 (List.length (sends effs));
  let _, effs =
    Peer_engine.handle e ~now:0. ~dag:(Node.dag ahead_node)
      (Peer_engine.Message_received { from = 1; bytes = a_request () })
  in
  check_i "request unanswered" 0 (List.length (sends effs));
  check_b "suppression traced" true
    (List.exists
       (Peer_engine.effect_equal
          (Peer_engine.Trace (Peer_engine.Request_suppressed { src = 1 })))
       effs)

let withholding_serves_only_own () =
  let o =
    scripted_pull ~b_policy:Peer_engine.Withholding ~a_node:behind_node
      ~b_node:ahead_node ()
  in
  check_b "completed" true (Option.is_some o.stats);
  check_b "own block served" true
    (Dag.mem o.dag ahead_own_block.Block.hash);
  List.iter
    (fun (b : Block.t) ->
      check_b "foreign block withheld" false (Dag.mem o.dag b.Block.hash))
    ahead_foreign_blocks

(* The incrementally maintained censored view (Block_created absorption)
   answers exactly like one rebuilt from the full replica at creation
   time — the cache the withholding hot-path optimisation relies on. *)
let withholding_cache_matches_rebuild () =
  let seeded =
    Peer_engine.create
      ~config:
        {
          Peer_engine.Config.default with
          Peer_engine.Config.policy = Peer_engine.Withholding;
        }
      ~user_id:(Node.user_id ahead_node) ~dag:(Node.dag ahead_node) ()
  in
  let genesis_only =
    List.fold_left
      (fun acc (b : Block.t) ->
        if Block.is_genesis b then
          match Dag.add acc b with Ok d -> d | Error _ -> acc
        else acc)
      Dag.empty
      (Dag.topo_order (Node.dag ahead_node))
  in
  let incremental =
    Peer_engine.create
      ~config:
        {
          Peer_engine.Config.default with
          Peer_engine.Config.policy = Peer_engine.Withholding;
        }
      ~user_id:(Node.user_id ahead_node) ~dag:genesis_only ()
  in
  let incremental =
    List.fold_left
      (fun e (b : Block.t) ->
        fst
          (Peer_engine.handle e ~now:0. ~dag:(Node.dag ahead_node)
             (Peer_engine.Block_created b)))
      incremental
      (Dag.topo_order (Node.dag ahead_node))
  in
  List.iter
    (fun level ->
      let req = encode_msg (Reconcile.Frontier_request { level }) in
      let stimulate engine =
        let _, effs =
          Peer_engine.handle engine ~now:0. ~dag:(Node.dag ahead_node)
            (Peer_engine.Message_received { from = 0; bytes = req })
        in
        sends effs
      in
      check_b
        (Printf.sprintf "same reply at level %d" level)
        true
        (List.equal String.equal (stimulate seeded) (stimulate incremental)))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Timer-key codec                                                      *)

let timer_codec_units () =
  check_b "gossip" true
    (match Peer_engine.timer_of_tag "gossip" with
    | Some Peer_engine.Gossip_round -> true
    | Some (Peer_engine.Session_timeout _) | None -> false);
  check_b "timeout:7" true
    (match Peer_engine.timer_of_tag "timeout:7" with
    | Some (Peer_engine.Session_timeout { generation = 7 }) -> true
    | Some (Peer_engine.Session_timeout _ | Peer_engine.Gossip_round) | None ->
      false);
  List.iter
    (fun tag ->
      check_b ("foreign tag " ^ tag) true
        (match Peer_engine.timer_of_tag tag with None -> true | Some _ -> false))
    [ ""; "gossipx"; "timeout"; "timeout:"; "timeout:x"; "timeout:1:2"; "t:1" ]

let qcheck_timer_roundtrip =
  QCheck.Test.make ~count:200 ~name:"timer tag codec roundtrips"
    QCheck.(int_bound 1_000_000)
    (fun generation ->
      let key = Peer_engine.Session_timeout { generation } in
      match Peer_engine.timer_of_tag (Peer_engine.tag_of_timer key) with
      | Some (Peer_engine.Session_timeout { generation = g }) ->
        Int.equal g generation
      | Some Peer_engine.Gossip_round | None -> false)

(* ------------------------------------------------------------------ *)
(* Adapter vs scripted driver: identical traces for identical inputs    *)

(* Run a real simulated fleet with a recording tap, then replay every
   peer's recorded input sequence through a fresh engine. Because the
   engine is a pure state machine, the replay must reproduce the adapter
   run's effects bit for bit — the property that makes the Simnet host
   and any other host interchangeable. *)
let adapter_trace_replays () =
  let module Net = Vegvisir_net in
  let recorded : (int * float * Dag.t * Peer_engine.input * Peer_engine.effect_ list) list ref =
    ref []
  in
  let tap ~peer ~now ~dag input effects =
    recorded := (peer, now, dag, input, effects) :: !recorded
  in
  let behaviors =
    [| Peer_engine.Honest; Peer_engine.Withholding; Peer_engine.Honest |]
  in
  let fleet =
    Net.Scenario.build ~seed:77L ~topo:(Net.Topology.clique ~n:3) ~behaviors
      ~tap
      ~init_crdts:[ ("log", log_spec) ]
      ()
  in
  let g = fleet.Net.Scenario.gossip in
  Net.Scenario.run fleet ~until_ms:2_000.;
  (match
     Node.prepare_transaction (Net.Gossip.node g 0) ~crdt:"log" ~op:"add"
       [ Value.String "traced" ]
   with
  | Ok tx -> begin
    match Net.Gossip.append g 0 [ tx ] with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "fleet append: %a" Node.pp_append_error e
  end
  | Error e -> Alcotest.failf "prepare: %s" (Schema.error_to_string e));
  Net.Scenario.run fleet ~until_ms:20_000.;
  let steps = List.rev !recorded in
  check_b "something was recorded" true (List.length steps > 100);
  (* Fresh engines with the adapter's creation parameters (Gossip.create
     widens stale_after_ms to twice the gossip interval; Scenario.build
     creates engines before the genesis is seeded, hence the empty dag). *)
  let engines =
    Array.init 3 (fun i ->
        ref
          (Peer_engine.create
             ~config:
               {
                 Peer_engine.Config.default with
                 Peer_engine.Config.policy = behaviors.(i);
                 stale_after_ms = 5_000.;
               }
             ~user_id:(Node.user_id (Net.Gossip.node g i)) ~dag:Dag.empty ()))
  in
  let mismatches =
    List.fold_left
      (fun bad (peer, now, dag, input, expected) ->
        let e', effects = Peer_engine.handle !(engines.(peer)) ~now ~dag input in
        engines.(peer) := e';
        if List.equal Peer_engine.effect_equal effects expected then bad
        else bad + 1)
      0 steps
  in
  check_i "every step replays identically" 0 mismatches

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vegvisir-engine"
    [
      ( "reconciliation",
        [
          Alcotest.test_case "scripted pipe == sync_dags" `Quick
            scripted_matches_sync_dags;
          Alcotest.test_case "lost reply -> retransmit" `Quick
            lost_reply_recovers;
          Alcotest.test_case "duplicated replies ignored" `Quick
            duplicated_replies_ignored;
          Alcotest.test_case "reordered replies recover" `Quick
            reordered_replies_recover;
          Alcotest.test_case "garbage frame traced" `Quick garbage_frame_traced;
          Alcotest.test_case "retry exhaustion aborts" `Quick
            retry_exhaustion_aborts;
          QCheck_alcotest.to_alcotest qcheck_random_transport;
        ] );
      ( "timers",
        [
          Alcotest.test_case "timeout aborts session" `Quick
            timeout_aborts_session;
          Alcotest.test_case "stale generation ignored" `Quick
            stale_generation_timer_ignored;
          Alcotest.test_case "timer codec units" `Quick timer_codec_units;
          QCheck_alcotest.to_alcotest qcheck_timer_roundtrip;
        ] );
      ( "policies",
        [
          Alcotest.test_case "knowledge cache suppresses proven holdings"
            `Quick knowledge_cache_suppresses_proven;
          Alcotest.test_case "explicit fetch overrides the cache" `Quick
            explicit_fetch_overrides_cache;
          Alcotest.test_case "serving leaves the cache unconfirmed" `Quick
            serving_leaves_cache_unconfirmed;
          Alcotest.test_case "knowledge cache off is legacy" `Quick
            knowledge_cache_off_is_legacy;
          Alcotest.test_case "silent" `Quick silent_policy;
          Alcotest.test_case "withholding serves only own" `Quick
            withholding_serves_only_own;
          Alcotest.test_case "withholding cache == rebuild" `Quick
            withholding_cache_matches_rebuild;
        ] );
      ( "hosts",
        [
          Alcotest.test_case "adapter trace replays" `Quick
            adapter_trace_replays;
        ] );
    ]
