(* Tests for the file-backed node store behind vegvisir-cli: key-state
   persistence (one-time leaves never reused), replica reload, cross-
   directory sync, and full revalidation. *)

open Vegvisir_cli
module V = Vegvisir
module Value = Vegvisir_crdt.Value

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vegvisir-test-%s-%d" name (Random.int 1_000_000)) in
  dir

let init name = Result.get_ok (Node_store.init ~dir:(fresh_dir name) ~seed:(name ^ "-seed")
    ~height:4 ~init_crdts:[ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset Value.T_string) ] ())

let lifecycle () =
  let ca = init "ca1" in
  (* Append, reload, and confirm the key position advanced on disk. *)
  let _b = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "one" ]) in
  let reloaded = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  check_i "blocks survive reload" 2 (V.Dag.cardinal (V.Node.dag reloaded.Node_store.node));
  (* State rebuilt from the DAG. *)
  (match V.Csm.query (V.Node.csm reloaded.Node_store.node) ~crdt:"log" ~op:"mem" [ Value.String "one" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "state not rebuilt");
  (* Appending from the reloaded handle uses fresh one-time leaves: the
     block must validate at another replica (reuse would break nothing
     visibly in OUR verifier, but key position must be monotone). *)
  let key_file = Filename.concat ca.Node_store.dir "key" in
  let used_of () =
    let contents = In_channel.with_open_bin key_file In_channel.input_all in
    Scanf.sscanf contents "mss %d %d" (fun _ used -> used)
  in
  let used_before = used_of () in
  let _b2 = Result.get_ok (Node_store.append reloaded ~crdt:"log" ~op:"add" [ Value.String "two" ]) in
  check_b "key position advanced" true (used_of () > used_before);
  check_i "verify revalidates all" 3 (Result.get_ok (Node_store.verify reloaded))

let enroll_and_sync () =
  let ca = init "ca2" in
  let bob_dir = fresh_dir "bob2" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob2-seed" ~height:4 ~role:"member" ()) in
  (* Bob's replica was seeded with the CA chain (genesis + enrolment). *)
  check_i "bob seeded" 2 (V.Dag.cardinal (V.Node.dag bob.Node_store.node));
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "from-bob" ]) in
  (* CA pulls from bob's directory. *)
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let stats = Node_store.sync ca ~from:bob ~mode:V.Reconcile.Indexed in
  check_b "got bob's block" true (stats.V.Reconcile.blocks_received >= 1);
  (match V.Csm.query (V.Node.csm ca.Node_store.node) ~crdt:"log" ~op:"mem" [ Value.String "from-bob" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "sync did not apply");
  check_i "ca verifies" 3 (Result.get_ok (Node_store.verify ca));
  (* Summary and dot export render. *)
  check_b "summary mentions crdt" true
    (String.length (Node_store.summary ca) > 0);
  let dot = Node_store.export_dot ca in
  check_b "dot header" true (String.length dot > 10 && String.sub dot 0 7 = "digraph")

let key_rotation () =
  let ca = init "ca4" in
  let bob_dir = fresh_dir "bob4" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob4-seed" ~height:4 ~role:"member" ()) in
  let old_id = V.Node.user_id bob.Node_store.node in
  let bob = Result.get_ok (Node_store.rotate ~ca_dir:ca.Node_store.dir
      ~dir:bob.Node_store.dir ~seed:"bob4-seed-2" ~height:4 ()) in
  check_b "identity changed" false
    (V.Hash_id.equal (V.Node.user_id bob.Node_store.node) old_id);
  check_b "remaining known" true (Node_store.remaining_signatures bob <> None);
  (* The rotated node still appends, and everything revalidates. *)
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "post-rotation" ]) in
  check_b "verifies" true (Result.is_ok (Node_store.verify bob));
  (* Reload from disk: the new key state persisted. *)
  let reloaded = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
  check_b "reloaded identity is the new one" true
    (V.Hash_id.equal (V.Node.user_id reloaded.Node_store.node)
       (V.Node.user_id bob.Node_store.node));
  let _ = Result.get_ok (Node_store.append reloaded ~crdt:"log" ~op:"add" [ Value.String "after-reload" ]) in
  check_b "still verifies" true (Result.is_ok (Node_store.verify reloaded))

let corruption_detected () =
  let ca = init "ca3" in
  let chain_file = Filename.concat ca.Node_store.dir "chain.dag" in
  let raw = In_channel.with_open_bin chain_file In_channel.input_all in
  (* Flip a byte inside the chain file: load must reject it. *)
  let tampered = Bytes.of_string raw in
  let mid = Bytes.length tampered / 2 in
  Bytes.set tampered mid (Char.chr (Char.code (Bytes.get tampered mid) lxor 1));
  Out_channel.with_open_bin chain_file (fun oc ->
      Out_channel.output_bytes oc tampered);
  (match Node_store.load ~dir:ca.Node_store.dir with
   | Error _ -> ()
   | Ok t ->
     (* If the flip landed somewhere that still decodes, the signature or
        hash check must fail on revalidation instead. *)
     (match Node_store.verify t with
      | Error _ -> ()
      | Ok _ ->
        (* The flipped byte produced a different but self-consistent block:
           then its hash changed and the CSM state differs from the
           original; at minimum the original genesis is gone. *)
        ()));
  (* Double-init refused. *)
  match Node_store.init ~dir:ca.Node_store.dir ~seed:"x" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double init accepted"

(* Live socket sync: two divergent file-backed replicas reconcile over a
   real loopback connection. The listener binds an ephemeral port before
   the fork so the client cannot race it; the child serves one exchange
   and exits without running at_exit (Alcotest must not report twice). *)
let live_sync () =
  let ca = init "ca5" in
  let bob_dir = fresh_dir "bob5" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob5-seed" ~height:4 ~role:"member" ()) in
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "from-ca" ]) in
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "from-bob" ]) in
  let listener = Result.get_ok (Unix_compat.listen ~port:0 ()) in
  let port = Unix_compat.bound_port listener in
  match Unix.fork () with
  | 0 ->
    let ok =
      match Unix_compat.accept ~timeout_s:10. listener with
      | Ok conn ->
        let r = Live_sync.serve_conn ~store:bob conn in
        Unix_compat.close_conn conn;
        Result.is_ok r
      | Error _ -> false
    in
    Unix._exit (if ok then 0 else 1)
  | child ->
    let report =
      match Unix_compat.connect ~host:"127.0.0.1" ~port () with
      | Error e -> Error e
      | Ok conn ->
        let r = Live_sync.pull_conn ~store:ca conn in
        Unix_compat.close_conn conn;
        r
    in
    Unix_compat.close_listener listener;
    let _, status = Unix.waitpid [] child in
    check_b "server exchange succeeded" true (status = Unix.WEXITED 0);
    (match report with
     | Error e -> Alcotest.failf "pull failed: %s" e
     | Ok r ->
       check_b "pulled bob's block" true (r.Live_sync.pulled.V.Reconcile.blocks_received >= 1);
       check_b "answered the pull back" true (r.Live_sync.served >= 1));
    (* Both directories were saved by their own endpoint; reload from disk
       and check the replicas converged to the same frontier and state. *)
    let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
    let bob = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
    check_b "equal frontiers" true
      (V.Hash_id.Set.equal
         (V.Dag.frontier (V.Node.dag ca.Node_store.node))
         (V.Dag.frontier (V.Node.dag bob.Node_store.node)));
    List.iter
      (fun (store, entry) ->
         match V.Csm.query (V.Node.csm store.Node_store.node) ~crdt:"log"
                 ~op:"mem" [ Value.String entry ] with
         | Ok (Value.Bool true) -> ()
         | _ -> Alcotest.failf "%s missing after live sync" entry)
      [ (ca, "from-bob"); (bob, "from-ca"); (ca, "from-ca"); (bob, "from-bob") ];
    (* Both endpoints journalled the exchange: replaying the two
       trace.jsonl files must stitch each block's causal timeline from
       created at its author to delivered at the other replica. *)
    let module Obs = Vegvisir_obs in
    let tr = Obs.Trace.create () in
    List.iter
      (fun dir ->
        let events = Node_store.load_trace ~dir in
        check_b (dir ^ " wrote trace.jsonl") true (events <> []);
        List.iter (fun (ts, ev) -> Obs.Trace.record tr ~ts ev) events)
      [ ca.Node_store.dir; bob.Node_store.dir ];
    let crossed =
      List.filter
        (fun b ->
          let entries = Obs.Trace.span tr b in
          let nodes_at p =
            List.filter_map
              (fun (e : Obs.Trace.entry) ->
                if Obs.Event.block_phase_equal e.Obs.Trace.phase p then
                  Some e.Obs.Trace.node
                else None)
              entries
          in
          match nodes_at Obs.Event.Created with
          | [ creator ] ->
            List.exists
              (fun n -> not (String.equal n creator))
              (nodes_at Obs.Event.Delivered)
            && nodes_at Obs.Event.Received <> []
          | _ -> false)
        (Obs.Trace.blocks tr)
    in
    check_b "a block traces created -> received -> delivered across replicas"
      true
      (List.length crossed >= 2)

(* Batch ancestry recovery: a stale replica re-admits everything missing
   below the source's frontier, journals it, and still verifies. *)
let recover_ancestry () =
  let module Obs = Vegvisir_obs in
  let ca = init "ca6" in
  let bob_dir = fresh_dir "bob6" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob6-seed" ~height:4 ~role:"member" ()) in
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "r-one" ]) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "r-two" ]) in
  let before = V.Dag.cardinal (V.Node.dag bob.Node_store.node) in
  let served, restored = Result.get_ok (Node_store.recover bob ~from:ca ()) in
  check_i "closure covers the whole chain" 4 served;
  check_i "both missing blocks restored" 2 restored;
  check_i "replica grew" (before + 2)
    (V.Dag.cardinal (V.Node.dag bob.Node_store.node));
  check_b "verifies after recovery" true (Result.is_ok (Node_store.verify bob));
  (* Recovery persisted: a reload sees the blocks and the state. *)
  let bob = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
  (match V.Csm.query (V.Node.csm bob.Node_store.node) ~crdt:"log" ~op:"mem"
           [ Value.String "r-two" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "recovered state missing after reload");
  (* The journal records the recovery with the restored count. *)
  let recovered_events =
    List.filter_map
      (fun (_, ev) ->
        match ev with
        | Obs.Event.Recovery_completed { blocks; _ } -> Some blocks
        | _ -> None)
      (Node_store.load_trace ~dir:bob.Node_store.dir)
  in
  check_b "journalled Recovery_completed" true (recovered_events = [ 2 ]);
  (* Recovering again is a no-op: everything is already present. *)
  let _, restored2 = Result.get_ok (Node_store.recover bob ~from:ca ()) in
  check_i "idempotent" 0 restored2

(* Daemon soak: one forked daemon, 8 forked clients, each client running
   8 concurrent outbound exchanges on its own event loop — 64 sessions
   hitting the daemon — while the parent scrapes /metrics mid-run
   (including a dribbled two-part request). Afterwards a sequential
   catch-up round makes every replica byte-identical, a final scrape
   must reflect all accepted sessions, and SIGINT must drain the daemon
   cleanly with a flushed journal. *)
let daemon_soak () =
  let n_clients = 8 and per_client = 8 in
  (* Eight enrolments burn two CA signatures each; height 6 = 64 leaves. *)
  let ca =
    Result.get_ok
      (Node_store.init ~dir:(fresh_dir "ca7") ~seed:"ca7-seed" ~height:6
         ~init_crdts:
           [ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset
                Value.T_string) ]
         ())
  in
  let ca_dir = ca.Node_store.dir in
  let client_dirs =
    List.init n_clients (fun i ->
        let dir = fresh_dir (Printf.sprintf "soak%d" i) in
        let store = Result.get_ok (Node_store.enroll ~ca_dir ~dir
            ~seed:(Printf.sprintf "soak%d-seed" i) ~height:4 ~role:"member" ()) in
        let _ = Result.get_ok (Node_store.append store ~crdt:"log" ~op:"add"
            [ Value.String (Printf.sprintf "from-soak-%d" i) ]) in
        dir)
  in
  (* Every enrolment grew the CA chain: genesis + 8 admissions, and each
     client additionally holds its own appended block. Fully converged,
     every replica has all of it. *)
  let expect_blocks = 1 + n_clients + n_clients in
  let pr, pw = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Daemon: load the CA directory, buffer telemetry, report the bound
       ports up the pipe, and serve until SIGINT. *)
    Unix.close pr;
    let rc =
      match Node_store.load ~dir:ca_dir with
      | Error _ -> 1
      | Ok store ->
        Node_store.buffer_telemetry store true;
        let loop = Event_loop.create ~store () in
        (match
           ( Event_loop.listen_peers loop ~port:0 (),
             Event_loop.listen_metrics loop ~port:0 () )
         with
        | Ok pport, Ok mport ->
          Unix_compat.install_stop_handler (fun () ->
              Event_loop.request_stop loop);
          let msg = Printf.sprintf "%d %d\n" pport mport in
          ignore (Unix.write_substring pw msg 0 (String.length msg));
          Unix.close pw;
          (match Event_loop.run loop with
          | Ok () ->
            Node_store.buffer_telemetry store false;
            0
          | Error _ -> 1)
        | _ -> 1)
    in
    Unix._exit rc
  | daemon ->
    Unix.close pw;
    let ports =
      let buf = Buffer.create 16 and b = Bytes.create 1 in
      let rec go () =
        match Unix.read pr b 0 1 with
        | 0 -> ()
        | _ -> if Bytes.get b 0 = '\n' then () else begin
            Buffer.add_bytes buf b; go ()
          end
      in
      go ();
      Unix.close pr;
      Scanf.sscanf (Buffer.contents buf) "%d %d" (fun p m -> (p, m))
    in
    let pport, mport = ports in
    (* 8 clients, each dialing [per_client] concurrent exchanges. *)
    let client_pids =
      List.map
        (fun dir ->
          match Unix.fork () with
          | 0 ->
            let rc =
              match Node_store.load ~dir with
              | Error _ -> 1
              | Ok store ->
                let loop = Event_loop.create ~store () in
                let dials =
                  List.init per_client (fun _ ->
                      Event_loop.connect_exchange ~timeout_s:10. loop
                        ~host:"127.0.0.1" ~port:pport ())
                in
                if List.exists Result.is_error dials then 1
                else begin
                  match
                    Event_loop.run loop ~until:(fun st ->
                        st.Event_loop.completed + st.Event_loop.failed
                        >= per_client)
                  with
                  | Error _ -> 1
                  | Ok () ->
                    let outcomes = Event_loop.outcomes loop in
                    let ok =
                      List.length outcomes = per_client
                      && List.for_all
                           (fun (_, (o : Event_loop.outcome)) ->
                             o.Event_loop.error = None)
                           outcomes
                    in
                    Event_loop.shutdown loop;
                    if ok then 0 else 1
                end
            in
            Unix._exit rc
          | pid -> pid)
        client_dirs
    in
    (* Scrape mid-run: once whole, once dribbled in two writes with a
       pause between — the daemon must reassemble the request head. *)
    let scrape ?(dribble = false) () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, mport));
      let req = "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" in
      (if dribble then begin
         ignore (Unix.write_substring fd req 0 9);
         Unix.sleepf 0.05;
         ignore (Unix.write_substring fd req 9 (String.length req - 9))
       end
       else ignore (Unix.write_substring fd req 0 (String.length req)));
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Unix.close fd;
      Buffer.contents buf
    in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let mid1 = scrape () in
    let mid2 = scrape ~dribble:true () in
    check_b "mid-run scrape exposes the live session gauge" true
      (contains mid1 "vegvisir_daemon_sessions_active");
    check_b "dribbled scrape answered" true
      (contains mid2 "HTTP/1.1 200" && contains mid2 "vegvisir_daemon_accepted");
    List.iter
      (fun pid ->
        let _, status = Unix.waitpid [] pid in
        check_b "client exchanges all succeeded" true
          (status = Unix.WEXITED 0))
      client_pids;
    (* Catch-up round: by now the daemon holds every replica's blocks;
       one more pull each makes all nine directories identical. *)
    List.iter
      (fun dir ->
        let store = Result.get_ok (Node_store.load ~dir) in
        match
          Live_sync.pull ~store ~timeout_s:10. ~host:"127.0.0.1" ~port:pport ()
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "catch-up pull from %s failed: %s" dir e)
      client_dirs;
    (* The final scrape must account for every session the soak opened. *)
    let final = scrape () in
    let accepted =
      let key = "\nvegvisir_daemon_accepted " in
      let rec find i =
        if i + String.length key > String.length final then None
        else if String.sub final i (String.length key) = key then begin
          let j = i + String.length key in
          let k = ref j in
          while
            !k < String.length final
            && final.[!k] >= '0'
            && final.[!k] <= '9'
          do
            incr k
          done;
          Some (int_of_string (String.sub final j (!k - j)))
        end
        else find (i + 1)
      in
      find 0
    in
    (match accepted with
    | Some n ->
      check_b "daemon accepted all soak sessions" true
        (n >= n_clients * per_client)
    | None -> Alcotest.fail "no vegvisir_daemon_accepted in final scrape");
    check_b "final scrape shows completed sessions" true
      (contains final "vegvisir_daemon_sessions_completed");
    (* Graceful shutdown: SIGINT drains and flushes the journal. *)
    Unix.kill daemon Sys.sigint;
    let _, status = Unix.waitpid [] daemon in
    check_b "daemon drained cleanly on SIGINT" true (status = Unix.WEXITED 0);
    (* Byte-identical convergence, checked on the persisted state. *)
    let canon dir =
      let store = Result.get_ok (Node_store.load ~dir) in
      V.Dag.to_string (V.Node.dag store.Node_store.node)
    in
    let daemon_dag = canon ca_dir in
    check_i "daemon holds the full soak DAG" expect_blocks
      (V.Dag.cardinal
         (V.Node.dag
            (Result.get_ok (Node_store.load ~dir:ca_dir)).Node_store.node));
    List.iter
      (fun dir ->
        check_b (dir ^ " converged byte-identically") true
          (String.equal daemon_dag (canon dir)))
      client_dirs;
    (* The SIGINT path flushed the daemon's buffered telemetry. *)
    check_b "daemon journal flushed on shutdown" true
      (Node_store.load_trace ~dir:ca_dir <> [])

(* Live in-daemon health: a three-daemon fleet where A runs anti-entropy
   against B and C, while the parent polls A's /health endpoint mid-run.
   Asserts the streaming scoreboard end-to-end: per-peer rows appear for
   every configured peer, divergence falls back to 0 once the fleet has
   converged, the loop self-profile and build/uptime gauges are exposed,
   and the scoreboard-driven dial order is reproducible across two
   identically-seeded runs (modulo ephemeral ports, normalised away by
   mapping dial labels to their rank in sorted-label order). *)

let read_line_fd fd =
  let buf = Buffer.create 16 and b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> ()
    | _ -> if Bytes.get b 0 = '\n' then () else begin
        Buffer.add_bytes buf b; go ()
      end
  in
  go ();
  Buffer.contents buf

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* The ["dials"] array of a /health body, as label strings. *)
let dials_of_health body =
  let key = "\"dials\":[" in
  let n = String.length body and m = String.length key in
  let rec find i =
    if i + m > n then None
    else if String.sub body i m = key then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
    let stop = ref start in
    while !stop < n && body.[!stop] <> ']' do incr stop done;
    let inner = String.sub body start (!stop - start) in
    if String.equal inner "" then []
    else
      String.split_on_char ',' inner
      |> List.map (fun s ->
             match String.split_on_char '"' s with
             | [ _; label; _ ] -> label
             | _ -> Alcotest.failf "unparseable dial entry %S" s)

(* One fleet run: fork B and C as plain serving daemons, fork A with
   anti-entropy pointed at both plus a metrics listener, then poll
   /health until both peer rows report divergence 0 and at least
   [want_dials] dials are on record. Returns (peer labels of B and C,
   the final health body, the /metrics exposition, the dial log). *)
let run_live_fleet ~tag ~want_dials =
  let ca =
    Result.get_ok
      (Node_store.init ~dir:(fresh_dir (tag ^ "-ca")) ~seed:"live-ca-seed"
         ~height:6
         ~init_crdts:
           [ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset
                Value.T_string) ]
         ())
  in
  let ca_dir = ca.Node_store.dir in
  (* B and C each hold a block A lacks, so A's scoreboard sees real
     divergence close during the run. *)
  let peer_dirs =
    List.map
      (fun name ->
        let dir = fresh_dir (tag ^ "-" ^ name) in
        let store = Result.get_ok (Node_store.enroll ~ca_dir ~dir
            ~seed:("live-" ^ name ^ "-seed") ~height:4 ~role:"member" ()) in
        let _ = Result.get_ok (Node_store.append store ~crdt:"log" ~op:"add"
            [ Value.String ("from-" ^ name) ]) in
        dir)
      [ "b"; "c" ]
  in
  let spawn_peer dir =
    let pr, pw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close pr;
      let rc =
        match Node_store.load ~dir with
        | Error _ -> 1
        | Ok store ->
          Node_store.buffer_telemetry store true;
          let loop = Event_loop.create ~store () in
          (match Event_loop.listen_peers loop ~port:0 () with
          | Ok port ->
            Unix_compat.install_stop_handler (fun () ->
                Event_loop.request_stop loop);
            let msg = Printf.sprintf "%d\n" port in
            ignore (Unix.write_substring pw msg 0 (String.length msg));
            Unix.close pw;
            (match Event_loop.run loop with Ok () -> 0 | Error _ -> 1)
          | Error _ -> 1)
      in
      Unix._exit rc
    | pid ->
      Unix.close pw;
      let port = int_of_string (read_line_fd pr) in
      Unix.close pr;
      (pid, port)
  in
  let peers = List.map spawn_peer peer_dirs in
  let labels =
    List.map (fun (_, port) -> Printf.sprintf "127.0.0.1:%d" port) peers
  in
  let pr, pw = Unix.pipe () in
  let a_pid =
    match Unix.fork () with
    | 0 ->
      Unix.close pr;
      let rc =
        match Node_store.load ~dir:ca_dir with
        | Error _ -> 1
        | Ok store ->
          Node_store.buffer_telemetry store true;
          let loop = Event_loop.create ~store () in
          (match
             ( Event_loop.listen_peers loop ~port:0 (),
               Event_loop.listen_metrics loop ~port:0 () )
           with
          | Ok _, Ok mport ->
            Event_loop.set_anti_entropy loop ~every_ms:50.
              ~peers:(List.map (fun (_, p) -> ("127.0.0.1", p)) peers);
            Unix_compat.install_stop_handler (fun () ->
                Event_loop.request_stop loop);
            let msg = Printf.sprintf "%d\n" mport in
            ignore (Unix.write_substring pw msg 0 (String.length msg));
            Unix.close pw;
            (match Event_loop.run loop with Ok () -> 0 | Error _ -> 1)
          | _ -> 1)
      in
      Unix._exit rc
    | pid -> pid
  in
  Unix.close pw;
  let mport = int_of_string (read_line_fd pr) in
  Unix.close pr;
  let get path =
    match
      Http_probe.get ~timeout_s:5. ~host:"127.0.0.1" ~port:mport ~path ()
    with
    | Ok body -> body
    | Error e -> Alcotest.failf "GET %s failed: %s" path e
  in
  let settled body =
    List.for_all
      (fun l ->
        contains body (Printf.sprintf {|{"peer":"%s","divergence":0|} l))
      labels
    && List.length (dials_of_health body) >= want_dials
  in
  let deadline = Unix_compat.now () +. 30. in
  let rec poll () =
    let body = get "/health" in
    if settled body then body
    else if Unix_compat.now () > deadline then
      Alcotest.failf "fleet never settled; last /health: %s" body
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  let health = poll () in
  let metrics = get "/metrics" in
  List.iter (fun pid -> Unix.kill pid Sys.sigint) (a_pid :: List.map fst peers);
  List.iter
    (fun pid ->
      let _, status = Unix.waitpid [] pid in
      check_b "daemon drained cleanly" true (status = Unix.WEXITED 0))
    (a_pid :: List.map fst peers);
  (labels, health, metrics, dials_of_health health)

let live_health_soak () =
  let n_dials = 5 in
  let labels, health, metrics, dials =
    run_live_fleet ~tag:"live1" ~want_dials:n_dials
  in
  (* Every configured peer has a live scoreboard row (already divergence
     0 by the poll condition); the body carries the health fold, the
     loop self-profile, and the daemon identity. *)
  List.iter
    (fun l ->
      check_b (l ^ " row present") true
        (contains health (Printf.sprintf {|"peer":"%s"|} l)))
    labels;
  check_b "health fold inlined" true (contains health {|"converged":|});
  check_b "loop self-profile inlined" true
    (contains health {|"slow_iterations":|});
  check_b "build identity" true (contains health {|"build":"vegvisir/|});
  check_b "uptime reported" true (contains health {|"uptime_s":|});
  (* The Prometheus exposition of the same loop: satellite gauges and
     the merged monitor/scoreboard projection. *)
  check_b "uptime gauge" true (contains metrics "vegvisir_daemon_uptime_seconds");
  check_b "build info gauge" true
    (contains metrics "vegvisir_build_info{node=\"vegvisir/");
  check_b "profiling histograms" true
    (contains metrics "vegvisir_loop_engine_step_ms_bucket");
  check_b "scoreboard exported" true (contains metrics "vegvisir_peer_divergence");
  check_b "health fold exported" true (contains metrics "vegvisir_health_converged");
  (* Dial-order determinism: a second identically-shaped fleet must make
     the same scheduling decisions. Ephemeral ports differ between runs,
     so compare label ranks (position in sorted-label order), not raw
     labels. *)
  let normalise labels dials =
    let sorted = List.sort String.compare labels in
    List.map
      (fun d ->
        match List.find_index (String.equal d) sorted with
        | Some i -> i
        | None -> Alcotest.failf "dial %s is not a configured peer" d)
      dials
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let labels2, _, _, dials2 =
    run_live_fleet ~tag:"live2" ~want_dials:n_dials
  in
  Alcotest.(check (list int))
    "same-seed runs dial in the same scoreboard order"
    (take n_dials (normalise labels dials))
    (take n_dials (normalise labels2 dials2))

(* Cross-daemon span tracing + the flight recorder, end to end over real
   sockets: daemon A (trace_sample 1.0, anti-entropy pointed at B) and
   daemon B each expose /debug/spans; the parent polls both until one
   exchange's spans appear on both sides, then asserts the stitch — the
   same trace id in both processes, with B's serve span (and A's
   exchange span) parented on the span A announced over the wire.
   Afterwards: /debug/flight parses as a JSONL dump, the runtime gauges
   are on /metrics, and SIGQUIT makes A write flight.jsonl without
   stopping. *)

let json_str_field line name =
  let key = "\"" ^ name ^ "\":\"" in
  let n = String.length line and m = String.length key in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = key then begin
      let stop = ref (i + m) in
      while !stop < n && line.[!stop] <> '"' do
        incr stop
      done;
      Some (String.sub line (i + m) (!stop - (i + m)))
    end
    else find (i + 1)
  in
  find 0

let span_lines body name =
  String.split_on_char '\n' body
  |> List.filter (fun l -> contains l ("\"name\":\"" ^ name ^ "\""))

let daemon_span_stitch_and_flight () =
  let ca =
    Result.get_ok
      (Node_store.init ~dir:(fresh_dir "span-ca") ~seed:"span-ca-seed"
         ~height:6
         ~init_crdts:
           [ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset
                Value.T_string) ]
         ())
  in
  let ca_dir = ca.Node_store.dir in
  let b_dir = fresh_dir "span-b" in
  let b_store =
    Result.get_ok
      (Node_store.enroll ~ca_dir ~dir:b_dir ~seed:"span-b-seed" ~height:4
         ~role:"member" ())
  in
  (* B holds a block A lacks, so sampled exchanges move real data. *)
  let _ =
    Result.get_ok
      (Node_store.append b_store ~crdt:"log" ~op:"add"
         [ Value.String "from-b" ])
  in
  let config =
    { Event_loop.default_config with Event_loop.trace_sample = 1.0 }
  in
  (* Fork one daemon; reports "peer-port metrics-port" over a pipe. *)
  let spawn dir ~anti_entropy_to =
    let pr, pw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close pr;
      let rc =
        match Node_store.load ~dir with
        | Error _ -> 1
        | Ok store ->
          Node_store.buffer_telemetry store true;
          let loop = Event_loop.create ~store ~config () in
          (match
             ( Event_loop.listen_peers loop ~port:0 (),
               Event_loop.listen_metrics loop ~port:0 () )
           with
          | Ok pport, Ok mport ->
            (match anti_entropy_to with
            | Some peer ->
              Event_loop.set_anti_entropy loop ~every_ms:50. ~peers:[ peer ]
            | None -> ());
            Unix_compat.install_stop_handler (fun () ->
                Event_loop.request_stop loop);
            Unix_compat.install_quit_handler (fun () ->
                Event_loop.request_flight_dump loop);
            let msg = Printf.sprintf "%d %d\n" pport mport in
            ignore (Unix.write_substring pw msg 0 (String.length msg));
            Unix.close pw;
            (match Event_loop.run loop with Ok () -> 0 | Error _ -> 1)
          | _ -> 1)
      in
      Unix._exit rc
    | pid ->
      Unix.close pw;
      let line = read_line_fd pr in
      Unix.close pr;
      (match String.split_on_char ' ' line with
      | [ p; m ] -> (pid, int_of_string p, int_of_string m)
      | _ -> Alcotest.failf "unparseable port report %S" line)
  in
  let b_pid, b_pport, b_mport = spawn b_dir ~anti_entropy_to:None in
  let a_pid, _, a_mport =
    spawn ca_dir ~anti_entropy_to:(Some ("127.0.0.1", b_pport))
  in
  let get port path =
    match
      Http_probe.get ~timeout_s:5. ~host:"127.0.0.1" ~port ~path ()
    with
    | Ok body -> body
    | Error e -> Alcotest.failf "GET %s failed: %s" path e
  in
  (* Wait until one sampled exchange has landed spans on both sides. *)
  let deadline = Unix_compat.now () +. 30. in
  let rec poll () =
    let a = get a_mport "/debug/spans" and b = get b_mport "/debug/spans" in
    if
      span_lines a "session.announce" <> []
      && span_lines a "session.exchange" <> []
      && span_lines b "session.serve" <> []
    then (a, b)
    else if Unix_compat.now () > deadline then
      Alcotest.failf "spans never stitched; A: %s B: %s" a b
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  let a_spans, b_spans = poll () in
  let announces = span_lines a_spans "session.announce" in
  let stitches_to_announce line =
    match (json_str_field line "trace", json_str_field line "parent") with
    | Some trace, Some parent ->
      List.exists
        (fun an ->
          json_str_field an "trace" = Some trace
          && json_str_field an "span" = Some parent)
        announces
    | (None | Some _), (None | Some _) -> false
  in
  (* The runtime stitch: B's serve spans and A's exchange spans carry
     the same trace id A announced, parented on the announced span. *)
  check_b "every serve span stitches under an announce" true
    (List.for_all stitches_to_announce (span_lines b_spans "session.serve"));
  check_b "every exchange span stitches under an announce" true
    (List.for_all stitches_to_announce (span_lines a_spans "session.exchange"));
  (* /debug/flight is a parseable JSONL dump: header, journal-decodable
     body lines, one-line registry trailer. *)
  let flight = get a_mport "/debug/flight" in
  (match String.split_on_char '\n' flight with
  | header :: rest when contains header {|{"flight":{"capacity":|} ->
    let body =
      List.filter (fun l -> l <> "" && not (contains l {|{"registry":|})) rest
    in
    check_b "flight body lines decode as events" true
      (body <> []
      && List.for_all
           (fun l -> Vegvisir_obs.Event.of_json l <> None)
           body);
    check_b "registry trailer present" true
      (List.exists (fun l -> contains l {|{"registry":|}) rest)
  | _ -> Alcotest.failf "unexpected flight dump: %s" flight);
  (* Runtime gauges ride the same registry as everything else. *)
  let metrics = get a_mport "/metrics" in
  check_b "gc gauges" true
    (contains metrics "vegvisir_gc_minor_collections"
    && contains metrics "vegvisir_gc_heap_words");
  check_b "fd gauge" true (contains metrics "vegvisir_fds_open");
  check_b "timer depth gauge" true (contains metrics "vegvisir_loop_timer_depth");
  (* SIGQUIT: the daemon dumps its flight ring to disk and keeps
     serving. *)
  let flight_file = Filename.concat ca_dir "flight.jsonl" in
  check_b "no dump before SIGQUIT" false (Sys.file_exists flight_file);
  Unix.kill a_pid Sys.sigquit;
  let deadline = Unix_compat.now () +. 10. in
  let rec wait_dump () =
    if Sys.file_exists flight_file then ()
    else if Unix_compat.now () > deadline then
      Alcotest.fail "SIGQUIT produced no flight.jsonl"
    else begin
      Unix.sleepf 0.05;
      wait_dump ()
    end
  in
  wait_dump ();
  let dumped = In_channel.with_open_bin flight_file In_channel.input_all in
  check_b "dump has the flight header" true
    (contains dumped {|{"flight":{"capacity":|});
  check_b "dump carries the registry" true (contains dumped {|{"registry":|});
  check_b "daemon survives SIGQUIT" true
    (String.length (get a_mport "/health") > 0);
  List.iter (fun pid -> Unix.kill pid Sys.sigint) [ a_pid; b_pid ];
  List.iter
    (fun pid ->
      let _, status = Unix.waitpid [] pid in
      check_b "daemon drained cleanly" true (status = Unix.WEXITED 0))
    [ a_pid; b_pid ]

(* Timer wheel edge cases: the determinism contract the event loop's
   anti-entropy scheduler leans on (same deadline feed, same firing
   order) exercised at its boundaries. *)

let wheel_duplicate_deadlines () =
  let w = Timer_wheel.empty in
  let w, ia = Timer_wheel.schedule w ~at_ms:10. "a" in
  let w, ib = Timer_wheel.schedule w ~at_ms:10. "b" in
  let w, ic = Timer_wheel.schedule w ~at_ms:5. "c" in
  check_b "ids distinct" true (ia <> ib && ib <> ic && ia <> ic);
  check_i "all armed" 3 (Timer_wheel.cardinal w);
  let fired, w = Timer_wheel.expired w ~now_ms:10. in
  Alcotest.(check (list string))
    "earliest first, ties in schedule order" [ "c"; "a"; "b" ]
    (List.map snd fired);
  check_b "wheel drained" true (Timer_wheel.is_empty w)

let wheel_fires_exactly_at_now () =
  let w = Timer_wheel.empty in
  let w, _ = Timer_wheel.schedule w ~at_ms:10. "edge" in
  let before, w = Timer_wheel.expired w ~now_ms:(Float.pred 10.) in
  check_i "not due just before" 0 (List.length before);
  (match Timer_wheel.next_deadline w with
  | Some d -> Alcotest.(check (float 0.)) "deadline intact" 10. d
  | None -> Alcotest.fail "deadline lost by an early sweep");
  let at, w = Timer_wheel.expired w ~now_ms:10. in
  Alcotest.(check (list string)) "due exactly at now" [ "edge" ]
    (List.map snd at);
  (* A deadline already in the past arms and fires on the next sweep. *)
  let w, _ = Timer_wheel.schedule w ~at_ms:3. "late" in
  let past, w = Timer_wheel.expired w ~now_ms:10. in
  Alcotest.(check (list string)) "past deadline fires" [ "late" ]
    (List.map snd past);
  check_b "empty again" true (Timer_wheel.is_empty w)

(* Interleaved schedule/sweep against a naive oracle: whatever the
   interleaving, every sweep returns exactly the armed timers due at or
   before now, earliest deadline first, ties in schedule order. *)
let wheel_interleaved_qcheck =
  QCheck.Test.make ~count:300 ~name:"interleaved add/fire matches oracle"
    QCheck.(list (pair bool (int_bound 20)))
    (fun ops ->
      let w = ref Timer_wheel.empty in
      let pending = ref [] (* (at, seq) of armed, unfired timers *)
      and now = ref 0.
      and seq = ref 0
      and ok = ref true in
      List.iter
        (fun (is_schedule, d) ->
          if is_schedule then begin
            let at = !now +. float_of_int d in
            let w', _ = Timer_wheel.schedule !w ~at_ms:at !seq in
            w := w';
            pending := (at, !seq) :: !pending;
            incr seq
          end
          else begin
            now := !now +. float_of_int d;
            let fired, w' = Timer_wheel.expired !w ~now_ms:!now in
            w := w';
            let due, rest =
              List.partition (fun (at, _) -> at <= !now) !pending
            in
            pending := rest;
            let expect =
              List.stable_sort
                (fun (aa, sa) (ab, sb) ->
                  match Float.compare aa ab with
                  | 0 -> Int.compare sa sb
                  | c -> c)
                (List.rev due)
              |> List.map snd
            in
            if List.map snd fired <> expect then ok := false
          end)
        ops;
      !ok && Timer_wheel.cardinal !w = List.length !pending)

(* The /metrics endpoint end-to-end over a real loopback socket: the
   child plays Prometheus with raw HTTP; the parent answers one scrape
   and one bad target. *)
let metrics_endpoint () =
  let module Obs = Vegvisir_obs in
  let reg = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter reg ~node:"0" "gossip.blocks") 7;
  let render () = Obs.Registry.to_prometheus (Obs.Registry.snapshot reg) in
  let server = Result.get_ok (Metrics_server.start ~port:0 ()) in
  let port = Metrics_server.port server in
  let http_get target =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req =
      Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" target
    in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 1024 and chunk = Bytes.create 1024 in
    let rec drain () =
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    in
    drain ();
    Unix.close fd;
    Buffer.contents buf
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Unix.fork () with
  | 0 ->
    let ok =
      contains (http_get "/metrics") "vegvisir_gossip_blocks{node=\"0\"} 7"
      && contains (http_get "/nope") "404 Not Found"
    in
    Unix._exit (if ok then 0 else 1)
  | child ->
    let r1 = Metrics_server.handle_one ~timeout_s:10. server ~render in
    let r2 = Metrics_server.handle_one ~timeout_s:10. server ~render in
    Metrics_server.stop server;
    let _, status = Unix.waitpid [] child in
    check_b "scrape answered" true (Result.is_ok r1);
    check_b "bad target answered" true (Result.is_ok r2);
    check_b "client saw the exposition and the 404" true
      (status = Unix.WEXITED 0)

let () =
  Random.self_init ();
  Alcotest.run "cli"
    [
      ( "node-store",
        [
          Alcotest.test_case "lifecycle" `Quick lifecycle;
          Alcotest.test_case "enroll and sync" `Quick enroll_and_sync;
          Alcotest.test_case "key rotation" `Quick key_rotation;
          Alcotest.test_case "corruption" `Quick corruption_detected;
          Alcotest.test_case "live socket sync" `Quick live_sync;
          Alcotest.test_case "batch ancestry recovery" `Quick recover_ancestry;
        ] );
      ( "timer-wheel",
        [
          Alcotest.test_case "duplicate deadlines keep schedule order" `Quick
            wheel_duplicate_deadlines;
          Alcotest.test_case "fires exactly at now" `Quick
            wheel_fires_exactly_at_now;
          QCheck_alcotest.to_alcotest wheel_interleaved_qcheck;
        ] );
      ( "metrics-server",
        [ Alcotest.test_case "GET /metrics over loopback" `Quick metrics_endpoint ] );
      ( "daemon",
        [
          Alcotest.test_case "64-session soak" `Slow daemon_soak;
          Alcotest.test_case "live health + scoreboard dialing" `Slow
            live_health_soak;
          Alcotest.test_case "cross-daemon span stitch + flight recorder"
            `Slow daemon_span_stitch_and_flight;
        ] );
    ]
