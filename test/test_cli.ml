(* Tests for the file-backed node store behind vegvisir-cli: key-state
   persistence (one-time leaves never reused), replica reload, cross-
   directory sync, and full revalidation. *)

open Vegvisir_cli
module V = Vegvisir
module Value = Vegvisir_crdt.Value

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vegvisir-test-%s-%d" name (Random.int 1_000_000)) in
  dir

let init name = Result.get_ok (Node_store.init ~dir:(fresh_dir name) ~seed:(name ^ "-seed")
    ~height:4 ~init_crdts:[ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset Value.T_string) ] ())

let lifecycle () =
  let ca = init "ca1" in
  (* Append, reload, and confirm the key position advanced on disk. *)
  let _b = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "one" ]) in
  let reloaded = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  check_i "blocks survive reload" 2 (V.Dag.cardinal (V.Node.dag reloaded.Node_store.node));
  (* State rebuilt from the DAG. *)
  (match V.Csm.query (V.Node.csm reloaded.Node_store.node) ~crdt:"log" ~op:"mem" [ Value.String "one" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "state not rebuilt");
  (* Appending from the reloaded handle uses fresh one-time leaves: the
     block must validate at another replica (reuse would break nothing
     visibly in OUR verifier, but key position must be monotone). *)
  let key_file = Filename.concat ca.Node_store.dir "key" in
  let used_of () =
    let contents = In_channel.with_open_bin key_file In_channel.input_all in
    Scanf.sscanf contents "mss %d %d" (fun _ used -> used)
  in
  let used_before = used_of () in
  let _b2 = Result.get_ok (Node_store.append reloaded ~crdt:"log" ~op:"add" [ Value.String "two" ]) in
  check_b "key position advanced" true (used_of () > used_before);
  check_i "verify revalidates all" 3 (Result.get_ok (Node_store.verify reloaded))

let enroll_and_sync () =
  let ca = init "ca2" in
  let bob_dir = fresh_dir "bob2" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob2-seed" ~height:4 ~role:"member" ()) in
  (* Bob's replica was seeded with the CA chain (genesis + enrolment). *)
  check_i "bob seeded" 2 (V.Dag.cardinal (V.Node.dag bob.Node_store.node));
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "from-bob" ]) in
  (* CA pulls from bob's directory. *)
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let stats = Node_store.sync ca ~from:bob ~mode:`Indexed in
  check_b "got bob's block" true (stats.V.Reconcile.blocks_received >= 1);
  (match V.Csm.query (V.Node.csm ca.Node_store.node) ~crdt:"log" ~op:"mem" [ Value.String "from-bob" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "sync did not apply");
  check_i "ca verifies" 3 (Result.get_ok (Node_store.verify ca));
  (* Summary and dot export render. *)
  check_b "summary mentions crdt" true
    (String.length (Node_store.summary ca) > 0);
  let dot = Node_store.export_dot ca in
  check_b "dot header" true (String.length dot > 10 && String.sub dot 0 7 = "digraph")

let key_rotation () =
  let ca = init "ca4" in
  let bob_dir = fresh_dir "bob4" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob4-seed" ~height:4 ~role:"member" ()) in
  let old_id = V.Node.user_id bob.Node_store.node in
  let bob = Result.get_ok (Node_store.rotate ~ca_dir:ca.Node_store.dir
      ~dir:bob.Node_store.dir ~seed:"bob4-seed-2" ~height:4 ()) in
  check_b "identity changed" false
    (V.Hash_id.equal (V.Node.user_id bob.Node_store.node) old_id);
  check_b "remaining known" true (Node_store.remaining_signatures bob <> None);
  (* The rotated node still appends, and everything revalidates. *)
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "post-rotation" ]) in
  check_b "verifies" true (Result.is_ok (Node_store.verify bob));
  (* Reload from disk: the new key state persisted. *)
  let reloaded = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
  check_b "reloaded identity is the new one" true
    (V.Hash_id.equal (V.Node.user_id reloaded.Node_store.node)
       (V.Node.user_id bob.Node_store.node));
  let _ = Result.get_ok (Node_store.append reloaded ~crdt:"log" ~op:"add" [ Value.String "after-reload" ]) in
  check_b "still verifies" true (Result.is_ok (Node_store.verify reloaded))

let corruption_detected () =
  let ca = init "ca3" in
  let chain_file = Filename.concat ca.Node_store.dir "chain.dag" in
  let raw = In_channel.with_open_bin chain_file In_channel.input_all in
  (* Flip a byte inside the chain file: load must reject it. *)
  let tampered = Bytes.of_string raw in
  let mid = Bytes.length tampered / 2 in
  Bytes.set tampered mid (Char.chr (Char.code (Bytes.get tampered mid) lxor 1));
  Out_channel.with_open_bin chain_file (fun oc ->
      Out_channel.output_bytes oc tampered);
  (match Node_store.load ~dir:ca.Node_store.dir with
   | Error _ -> ()
   | Ok t ->
     (* If the flip landed somewhere that still decodes, the signature or
        hash check must fail on revalidation instead. *)
     (match Node_store.verify t with
      | Error _ -> ()
      | Ok _ ->
        (* The flipped byte produced a different but self-consistent block:
           then its hash changed and the CSM state differs from the
           original; at minimum the original genesis is gone. *)
        ()));
  (* Double-init refused. *)
  match Node_store.init ~dir:ca.Node_store.dir ~seed:"x" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double init accepted"

(* Live socket sync: two divergent file-backed replicas reconcile over a
   real loopback connection. The listener binds an ephemeral port before
   the fork so the client cannot race it; the child serves one exchange
   and exits without running at_exit (Alcotest must not report twice). *)
let live_sync () =
  let ca = init "ca5" in
  let bob_dir = fresh_dir "bob5" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob5-seed" ~height:4 ~role:"member" ()) in
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "from-ca" ]) in
  let _ = Result.get_ok (Node_store.append bob ~crdt:"log" ~op:"add" [ Value.String "from-bob" ]) in
  let listener = Result.get_ok (Unix_compat.listen ~port:0 ()) in
  let port = Unix_compat.bound_port listener in
  match Unix.fork () with
  | 0 ->
    let ok =
      match Unix_compat.accept ~timeout_s:10. listener with
      | Ok conn ->
        let r = Live_sync.serve_conn ~store:bob conn in
        Unix_compat.close_conn conn;
        Result.is_ok r
      | Error _ -> false
    in
    Unix._exit (if ok then 0 else 1)
  | child ->
    let report =
      match Unix_compat.connect ~host:"127.0.0.1" ~port () with
      | Error e -> Error e
      | Ok conn ->
        let r = Live_sync.pull_conn ~store:ca conn in
        Unix_compat.close_conn conn;
        r
    in
    Unix_compat.close_listener listener;
    let _, status = Unix.waitpid [] child in
    check_b "server exchange succeeded" true (status = Unix.WEXITED 0);
    (match report with
     | Error e -> Alcotest.failf "pull failed: %s" e
     | Ok r ->
       check_b "pulled bob's block" true (r.Live_sync.pulled.V.Reconcile.blocks_received >= 1);
       check_b "answered the pull back" true (r.Live_sync.served >= 1));
    (* Both directories were saved by their own endpoint; reload from disk
       and check the replicas converged to the same frontier and state. *)
    let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
    let bob = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
    check_b "equal frontiers" true
      (V.Hash_id.Set.equal
         (V.Dag.frontier (V.Node.dag ca.Node_store.node))
         (V.Dag.frontier (V.Node.dag bob.Node_store.node)));
    List.iter
      (fun (store, entry) ->
         match V.Csm.query (V.Node.csm store.Node_store.node) ~crdt:"log"
                 ~op:"mem" [ Value.String entry ] with
         | Ok (Value.Bool true) -> ()
         | _ -> Alcotest.failf "%s missing after live sync" entry)
      [ (ca, "from-bob"); (bob, "from-ca"); (ca, "from-ca"); (bob, "from-bob") ];
    (* Both endpoints journalled the exchange: replaying the two
       trace.jsonl files must stitch each block's causal timeline from
       created at its author to delivered at the other replica. *)
    let module Obs = Vegvisir_obs in
    let tr = Obs.Trace.create () in
    List.iter
      (fun dir ->
        let events = Node_store.load_trace ~dir in
        check_b (dir ^ " wrote trace.jsonl") true (events <> []);
        List.iter (fun (ts, ev) -> Obs.Trace.record tr ~ts ev) events)
      [ ca.Node_store.dir; bob.Node_store.dir ];
    let crossed =
      List.filter
        (fun b ->
          let entries = Obs.Trace.span tr b in
          let nodes_at p =
            List.filter_map
              (fun (e : Obs.Trace.entry) ->
                if Obs.Event.block_phase_equal e.Obs.Trace.phase p then
                  Some e.Obs.Trace.node
                else None)
              entries
          in
          match nodes_at Obs.Event.Created with
          | [ creator ] ->
            List.exists
              (fun n -> not (String.equal n creator))
              (nodes_at Obs.Event.Delivered)
            && nodes_at Obs.Event.Received <> []
          | _ -> false)
        (Obs.Trace.blocks tr)
    in
    check_b "a block traces created -> received -> delivered across replicas"
      true
      (List.length crossed >= 2)

(* Batch ancestry recovery: a stale replica re-admits everything missing
   below the source's frontier, journals it, and still verifies. *)
let recover_ancestry () =
  let module Obs = Vegvisir_obs in
  let ca = init "ca6" in
  let bob_dir = fresh_dir "bob6" in
  let bob = Result.get_ok (Node_store.enroll ~ca_dir:ca.Node_store.dir ~dir:bob_dir
      ~seed:"bob6-seed" ~height:4 ~role:"member" ()) in
  let ca = Result.get_ok (Node_store.load ~dir:ca.Node_store.dir) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "r-one" ]) in
  let _ = Result.get_ok (Node_store.append ca ~crdt:"log" ~op:"add" [ Value.String "r-two" ]) in
  let before = V.Dag.cardinal (V.Node.dag bob.Node_store.node) in
  let served, restored = Result.get_ok (Node_store.recover bob ~from:ca ()) in
  check_i "closure covers the whole chain" 4 served;
  check_i "both missing blocks restored" 2 restored;
  check_i "replica grew" (before + 2)
    (V.Dag.cardinal (V.Node.dag bob.Node_store.node));
  check_b "verifies after recovery" true (Result.is_ok (Node_store.verify bob));
  (* Recovery persisted: a reload sees the blocks and the state. *)
  let bob = Result.get_ok (Node_store.load ~dir:bob.Node_store.dir) in
  (match V.Csm.query (V.Node.csm bob.Node_store.node) ~crdt:"log" ~op:"mem"
           [ Value.String "r-two" ] with
   | Ok (Value.Bool true) -> ()
   | _ -> Alcotest.fail "recovered state missing after reload");
  (* The journal records the recovery with the restored count. *)
  let recovered_events =
    List.filter_map
      (fun (_, ev) ->
        match ev with
        | Obs.Event.Recovery_completed { blocks; _ } -> Some blocks
        | _ -> None)
      (Node_store.load_trace ~dir:bob.Node_store.dir)
  in
  check_b "journalled Recovery_completed" true (recovered_events = [ 2 ]);
  (* Recovering again is a no-op: everything is already present. *)
  let _, restored2 = Result.get_ok (Node_store.recover bob ~from:ca ()) in
  check_i "idempotent" 0 restored2

(* Daemon soak: one forked daemon, 8 forked clients, each client running
   8 concurrent outbound exchanges on its own event loop — 64 sessions
   hitting the daemon — while the parent scrapes /metrics mid-run
   (including a dribbled two-part request). Afterwards a sequential
   catch-up round makes every replica byte-identical, a final scrape
   must reflect all accepted sessions, and SIGINT must drain the daemon
   cleanly with a flushed journal. *)
let daemon_soak () =
  let n_clients = 8 and per_client = 8 in
  (* Eight enrolments burn two CA signatures each; height 6 = 64 leaves. *)
  let ca =
    Result.get_ok
      (Node_store.init ~dir:(fresh_dir "ca7") ~seed:"ca7-seed" ~height:6
         ~init_crdts:
           [ ("log", Vegvisir_crdt.Schema.spec Vegvisir_crdt.Schema.Gset
                Value.T_string) ]
         ())
  in
  let ca_dir = ca.Node_store.dir in
  let client_dirs =
    List.init n_clients (fun i ->
        let dir = fresh_dir (Printf.sprintf "soak%d" i) in
        let store = Result.get_ok (Node_store.enroll ~ca_dir ~dir
            ~seed:(Printf.sprintf "soak%d-seed" i) ~height:4 ~role:"member" ()) in
        let _ = Result.get_ok (Node_store.append store ~crdt:"log" ~op:"add"
            [ Value.String (Printf.sprintf "from-soak-%d" i) ]) in
        dir)
  in
  (* Every enrolment grew the CA chain: genesis + 8 admissions, and each
     client additionally holds its own appended block. Fully converged,
     every replica has all of it. *)
  let expect_blocks = 1 + n_clients + n_clients in
  let pr, pw = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Daemon: load the CA directory, buffer telemetry, report the bound
       ports up the pipe, and serve until SIGINT. *)
    Unix.close pr;
    let rc =
      match Node_store.load ~dir:ca_dir with
      | Error _ -> 1
      | Ok store ->
        Node_store.buffer_telemetry store true;
        let loop = Event_loop.create ~store () in
        (match
           ( Event_loop.listen_peers loop ~port:0 (),
             Event_loop.listen_metrics loop ~port:0 () )
         with
        | Ok pport, Ok mport ->
          Unix_compat.install_stop_handler (fun () ->
              Event_loop.request_stop loop);
          let msg = Printf.sprintf "%d %d\n" pport mport in
          ignore (Unix.write_substring pw msg 0 (String.length msg));
          Unix.close pw;
          (match Event_loop.run loop with
          | Ok () ->
            Node_store.buffer_telemetry store false;
            0
          | Error _ -> 1)
        | _ -> 1)
    in
    Unix._exit rc
  | daemon ->
    Unix.close pw;
    let ports =
      let buf = Buffer.create 16 and b = Bytes.create 1 in
      let rec go () =
        match Unix.read pr b 0 1 with
        | 0 -> ()
        | _ -> if Bytes.get b 0 = '\n' then () else begin
            Buffer.add_bytes buf b; go ()
          end
      in
      go ();
      Unix.close pr;
      Scanf.sscanf (Buffer.contents buf) "%d %d" (fun p m -> (p, m))
    in
    let pport, mport = ports in
    (* 8 clients, each dialing [per_client] concurrent exchanges. *)
    let client_pids =
      List.map
        (fun dir ->
          match Unix.fork () with
          | 0 ->
            let rc =
              match Node_store.load ~dir with
              | Error _ -> 1
              | Ok store ->
                let loop = Event_loop.create ~store () in
                let dials =
                  List.init per_client (fun _ ->
                      Event_loop.connect_exchange ~timeout_s:10. loop
                        ~host:"127.0.0.1" ~port:pport ())
                in
                if List.exists Result.is_error dials then 1
                else begin
                  match
                    Event_loop.run loop ~until:(fun st ->
                        st.Event_loop.completed + st.Event_loop.failed
                        >= per_client)
                  with
                  | Error _ -> 1
                  | Ok () ->
                    let outcomes = Event_loop.outcomes loop in
                    let ok =
                      List.length outcomes = per_client
                      && List.for_all
                           (fun (_, (o : Event_loop.outcome)) ->
                             o.Event_loop.error = None)
                           outcomes
                    in
                    Event_loop.shutdown loop;
                    if ok then 0 else 1
                end
            in
            Unix._exit rc
          | pid -> pid)
        client_dirs
    in
    (* Scrape mid-run: once whole, once dribbled in two writes with a
       pause between — the daemon must reassemble the request head. *)
    let scrape ?(dribble = false) () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, mport));
      let req = "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" in
      (if dribble then begin
         ignore (Unix.write_substring fd req 0 9);
         Unix.sleepf 0.05;
         ignore (Unix.write_substring fd req 9 (String.length req - 9))
       end
       else ignore (Unix.write_substring fd req 0 (String.length req)));
      let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Unix.close fd;
      Buffer.contents buf
    in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    let mid1 = scrape () in
    let mid2 = scrape ~dribble:true () in
    check_b "mid-run scrape exposes the live session gauge" true
      (contains mid1 "vegvisir_daemon_sessions_active");
    check_b "dribbled scrape answered" true
      (contains mid2 "HTTP/1.1 200" && contains mid2 "vegvisir_daemon_accepted");
    List.iter
      (fun pid ->
        let _, status = Unix.waitpid [] pid in
        check_b "client exchanges all succeeded" true
          (status = Unix.WEXITED 0))
      client_pids;
    (* Catch-up round: by now the daemon holds every replica's blocks;
       one more pull each makes all nine directories identical. *)
    List.iter
      (fun dir ->
        let store = Result.get_ok (Node_store.load ~dir) in
        match
          Live_sync.pull ~store ~timeout_s:10. ~host:"127.0.0.1" ~port:pport ()
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "catch-up pull from %s failed: %s" dir e)
      client_dirs;
    (* The final scrape must account for every session the soak opened. *)
    let final = scrape () in
    let accepted =
      let key = "\nvegvisir_daemon_accepted " in
      let rec find i =
        if i + String.length key > String.length final then None
        else if String.sub final i (String.length key) = key then begin
          let j = i + String.length key in
          let k = ref j in
          while
            !k < String.length final
            && final.[!k] >= '0'
            && final.[!k] <= '9'
          do
            incr k
          done;
          Some (int_of_string (String.sub final j (!k - j)))
        end
        else find (i + 1)
      in
      find 0
    in
    (match accepted with
    | Some n ->
      check_b "daemon accepted all soak sessions" true
        (n >= n_clients * per_client)
    | None -> Alcotest.fail "no vegvisir_daemon_accepted in final scrape");
    check_b "final scrape shows completed sessions" true
      (contains final "vegvisir_daemon_sessions_completed");
    (* Graceful shutdown: SIGINT drains and flushes the journal. *)
    Unix.kill daemon Sys.sigint;
    let _, status = Unix.waitpid [] daemon in
    check_b "daemon drained cleanly on SIGINT" true (status = Unix.WEXITED 0);
    (* Byte-identical convergence, checked on the persisted state. *)
    let canon dir =
      let store = Result.get_ok (Node_store.load ~dir) in
      V.Dag.to_string (V.Node.dag store.Node_store.node)
    in
    let daemon_dag = canon ca_dir in
    check_i "daemon holds the full soak DAG" expect_blocks
      (V.Dag.cardinal
         (V.Node.dag
            (Result.get_ok (Node_store.load ~dir:ca_dir)).Node_store.node));
    List.iter
      (fun dir ->
        check_b (dir ^ " converged byte-identically") true
          (String.equal daemon_dag (canon dir)))
      client_dirs;
    (* The SIGINT path flushed the daemon's buffered telemetry. *)
    check_b "daemon journal flushed on shutdown" true
      (Node_store.load_trace ~dir:ca_dir <> [])

(* The /metrics endpoint end-to-end over a real loopback socket: the
   child plays Prometheus with raw HTTP; the parent answers one scrape
   and one bad target. *)
let metrics_endpoint () =
  let module Obs = Vegvisir_obs in
  let reg = Obs.Registry.create () in
  Obs.Registry.add (Obs.Registry.counter reg ~node:"0" "gossip.blocks") 7;
  let render () = Obs.Registry.to_prometheus (Obs.Registry.snapshot reg) in
  let server = Result.get_ok (Metrics_server.start ~port:0 ()) in
  let port = Metrics_server.port server in
  let http_get target =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let req =
      Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" target
    in
    ignore (Unix.write_substring fd req 0 (String.length req));
    let buf = Buffer.create 1024 and chunk = Bytes.create 1024 in
    let rec drain () =
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    in
    drain ();
    Unix.close fd;
    Buffer.contents buf
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Unix.fork () with
  | 0 ->
    let ok =
      contains (http_get "/metrics") "vegvisir_gossip_blocks{node=\"0\"} 7"
      && contains (http_get "/nope") "404 Not Found"
    in
    Unix._exit (if ok then 0 else 1)
  | child ->
    let r1 = Metrics_server.handle_one ~timeout_s:10. server ~render in
    let r2 = Metrics_server.handle_one ~timeout_s:10. server ~render in
    Metrics_server.stop server;
    let _, status = Unix.waitpid [] child in
    check_b "scrape answered" true (Result.is_ok r1);
    check_b "bad target answered" true (Result.is_ok r2);
    check_b "client saw the exposition and the 404" true
      (status = Unix.WEXITED 0)

let () =
  Random.self_init ();
  Alcotest.run "cli"
    [
      ( "node-store",
        [
          Alcotest.test_case "lifecycle" `Quick lifecycle;
          Alcotest.test_case "enroll and sync" `Quick enroll_and_sync;
          Alcotest.test_case "key rotation" `Quick key_rotation;
          Alcotest.test_case "corruption" `Quick corruption_detected;
          Alcotest.test_case "live socket sync" `Quick live_sync;
          Alcotest.test_case "batch ancestry recovery" `Quick recover_ancestry;
        ] );
      ( "metrics-server",
        [ Alcotest.test_case "GET /metrics over loopback" `Quick metrics_endpoint ] );
      ( "daemon",
        [ Alcotest.test_case "64-session soak" `Slow daemon_soak ] );
    ]
