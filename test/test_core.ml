(* Unit and property tests for the core vegvisir library: identifiers,
   wire format, certificates, blocks, the DAG, validation, the CRDT state
   machine, reconciliation, witness proofs, and the support chain. *)

open Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let ts ms = Timestamp.of_ms (Int64.of_int ms)

(* Shared fixtures: an owner (CA) and two members with oracle keys. *)
let owner_signer = Signer.oracle ~signature_size:64 ~id:"owner" ()
let owner_cert = Certificate.self_signed ~signer:owner_signer ~role:"ca"
let alice_signer = Signer.oracle ~signature_size:64 ~id:"alice" ()

let alice_cert =
  Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer ~subject:alice_signer
    ~role:"medic"

let bob_signer = Signer.oracle ~signature_size:64 ~id:"bob" ()

let bob_cert =
  Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer ~subject:bob_signer
    ~role:"member"

let log_spec = Schema.spec Schema.Gset Value.T_string

let genesis =
  Node.genesis_block ~signer:owner_signer ~cert:owner_cert ~timestamp:(ts 0)
    ~extra:
      [
        Transaction.create_crdt ~name:"log" log_spec;
        Transaction.add_user alice_cert;
        Transaction.add_user bob_cert;
      ]
    ()

let fresh_node signer cert =
  let n = Node.create ~signer ~cert () in
  (match Node.receive n ~now:(ts 1) genesis with
  | Node.Accepted -> ()
  | r -> Alcotest.failf "genesis not accepted: %a" Node.pp_receive_result r);
  n

let add_tx entry = Transaction.make ~crdt:"log" ~op:"add" [ Value.String entry ]

(* ------------------------------------------------------------------ *)
(* Hash_id                                                              *)

let hash_id_basics () =
  let h = Hash_id.digest "hello" in
  check_i "size" 32 (String.length (Hash_id.to_raw h));
  check_b "of_raw roundtrip" true (Hash_id.of_raw (Hash_id.to_raw h) = Some h);
  check_b "of_raw wrong size" true (Hash_id.of_raw "short" = None);
  check_b "hex roundtrip" true (Hash_id.of_hex (Hash_id.to_hex h) = Some h);
  check_b "bad hex" true (Hash_id.of_hex "zz" = None);
  check_i "short" 8 (String.length (Hash_id.short h));
  check_b "equal" true (Hash_id.equal h (Hash_id.digest "hello"));
  check_b "distinct" false (Hash_id.equal h (Hash_id.digest "other"))

(* ------------------------------------------------------------------ *)
(* Wire                                                                 *)

let wire_roundtrip () =
  let b = Buffer.create 64 in
  Wire.put_u8 b 255;
  Wire.put_u16 b 65535;
  Wire.put_u32 b 123456;
  Wire.put_i64 b (-42L);
  Wire.put_str b "hello";
  Wire.put_list b Wire.put_str [ "a"; "bb"; "" ];
  Wire.put_opt b Wire.put_u32 (Some 7);
  Wire.put_opt b Wire.put_u32 None;
  let c = Wire.cursor (Buffer.contents b) in
  check_i "u8" 255 (Wire.get_u8 c);
  check_i "u16" 65535 (Wire.get_u16 c);
  check_i "u32" 123456 (Wire.get_u32 c);
  Alcotest.(check int64) "i64" (-42L) (Wire.get_i64 c);
  check_s "str" "hello" (Wire.get_str c);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] (Wire.get_list c Wire.get_str);
  check_b "opt some" true (Wire.get_opt c Wire.get_u32 = Some 7);
  check_b "opt none" true (Wire.get_opt c Wire.get_u32 = None);
  check_b "at end" true (Wire.at_end c)

let wire_malformed () =
  let c = Wire.cursor "\x01" in
  (try
     ignore (Wire.get_u32 c);
     Alcotest.fail "expected Malformed"
   with Wire.Malformed _ -> ());
  check_b "decode_string rejects trailing" true
    (Wire.decode_string Wire.get_u8 "\x01\x02" = None);
  check_b "decode_string ok" true (Wire.decode_string Wire.get_u8 "\x09" = Some 9);
  Alcotest.check_raises "put_u8 range" (Invalid_argument "Wire.put_u8") (fun () ->
      Wire.put_u8 (Buffer.create 1) 256)

(* ------------------------------------------------------------------ *)
(* Signer / Certificate                                                 *)

let signer_schemes () =
  let mss = Signer.mss ~height:2 ~seed:"s" () in
  let msg = "message" in
  let sg = mss.Signer.sign msg in
  check_b "mss verify" true
    (Signer.verify ~scheme:"mss" ~public:mss.Signer.public ~msg ~signature:sg);
  check_b "mss wrong msg" false
    (Signer.verify ~scheme:"mss" ~public:mss.Signer.public ~msg:"other" ~signature:sg);
  check_b "remaining counts" true (mss.Signer.remaining () = Some 3);
  let o = Signer.oracle ~signature_size:64 ~id:"x" () in
  let so = o.Signer.sign msg in
  check_i "oracle size" 64 (String.length so);
  check_b "oracle verify" true
    (Signer.verify ~scheme:"oracle" ~public:o.Signer.public ~msg ~signature:so);
  check_b "oracle wrong public" false
    (Signer.verify ~scheme:"oracle" ~public:"oracle:y" ~msg ~signature:so);
  check_b "unknown scheme" false
    (Signer.verify ~scheme:"rsa" ~public:o.Signer.public ~msg ~signature:so)

let certificate_checks () =
  check_b "self-signed verifies" true (Certificate.verify ~ca:owner_cert owner_cert);
  check_b "issued verifies" true (Certificate.verify ~ca:owner_cert alice_cert);
  check_b "self-signed detected" true (Certificate.is_self_signed owner_cert);
  check_b "issued not self-signed" false (Certificate.is_self_signed alice_cert);
  (* Tampering with the role breaks the signature. *)
  let tampered = { alice_cert with Certificate.role = "ca" } in
  check_b "tampered role rejected" false (Certificate.verify ~ca:owner_cert tampered);
  (* Serialization. *)
  (match Certificate.of_string (Certificate.to_string alice_cert) with
  | Some c ->
    check_b "roundtrip" true (Certificate.equal c alice_cert);
    check_b "roundtrip verifies" true (Certificate.verify ~ca:owner_cert c)
  | None -> Alcotest.fail "certificate roundtrip");
  check_b "garbage rejected" true (Certificate.of_string "junk" = None);
  (* A certificate signed by a non-CA key fails. *)
  let mallory = Signer.oracle ~signature_size:64 ~id:"mallory" () in
  let forged = Certificate.issue ~ca:(Certificate.self_signed ~signer:mallory ~role:"ca")
      ~ca_signer:mallory ~subject:bob_signer ~role:"admin" in
  check_b "wrong issuer rejected" false (Certificate.verify ~ca:owner_cert forged)

(* ------------------------------------------------------------------ *)
(* Transaction / Block                                                  *)

let transaction_roundtrip () =
  let txs =
    [
      add_tx "hello";
      Transaction.add_user alice_cert;
      Transaction.create_crdt ~name:"c" (Schema.spec Schema.Gcounter Value.T_int);
      Transaction.make ~crdt:"x" ~op:"op" [];
    ]
  in
  List.iter
    (fun tx ->
      let b = Buffer.create 64 in
      Transaction.encode b tx;
      let c = Wire.cursor (Buffer.contents b) in
      let tx' = Transaction.decode c in
      check_b "tx roundtrip" true (Transaction.equal tx tx');
      check_i "byte_size" (Buffer.length b) (Transaction.byte_size tx))
    txs

let block_roundtrip_and_tamper () =
  let b =
    Block.create ~signer:alice_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 10)
      ~location:(Location.make ~lat:1.5 ~lon:2.5)
      ~parents:[ genesis.Block.hash ]
      [ add_tx "x"; add_tx "y" ]
  in
  check_b "not genesis" false (Block.is_genesis b);
  check_b "signature verifies" true
    (Block.verify_signature ~public:alice_signer.Signer.public ~scheme:"oracle" b);
  (match Block.of_string (Block.to_string b) with
  | Some b' ->
    check_b "roundtrip equal" true (Block.equal b b');
    check_b "hash stable" true (Hash_id.equal b.Block.hash b'.Block.hash);
    check_b "location survives" true (b'.Block.location = b.Block.location)
  | None -> Alcotest.fail "block roundtrip");
  (* Bit-flip anywhere changes identity and is detected. *)
  let raw = Bytes.of_string (Block.to_string b) in
  Bytes.set raw 60 (Char.chr (Char.code (Bytes.get raw 60) lxor 1));
  (match Block.of_string (Bytes.to_string raw) with
  | Some forged ->
    check_b "identity changed" false (Hash_id.equal forged.Block.hash b.Block.hash)
  | None -> () (* structurally invalid is also fine *));
  check_b "garbage rejected" true (Block.of_string "nope" = None)

let block_canonical_parents () =
  let p1 = Hash_id.digest "p1" and p2 = Hash_id.digest "p2" in
  let mk parents =
    Block.create ~signer:alice_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 5) ~parents [ add_tx "z" ]
  in
  let a = mk [ p1; p2; p1 ] and b = mk [ p2; p1 ] in
  check_b "parent order/dup canonicalized" true (Block.equal a b);
  check_i "dedup" 2 (List.length a.Block.parents)

(* ------------------------------------------------------------------ *)
(* DAG                                                                  *)

let mk_block ?(signer = alice_signer) ?(creator = alice_cert.Certificate.user_id)
    ~t ~parents label =
  Block.create ~signer ~creator ~timestamp:(ts t) ~parents [ add_tx label ]

let dag_with_genesis () = Result.get_ok (Dag.add Dag.empty genesis)

let dag_basics () =
  let d = dag_with_genesis () in
  check_i "one block" 1 (Dag.cardinal d);
  check_b "genesis" true (Dag.genesis d = Some genesis);
  check_b "frontier is genesis" true
    (Hash_id.Set.equal (Dag.frontier d) (Hash_id.Set.singleton genesis.Block.hash));
  let b1 = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "b1" in
  let d = Result.get_ok (Dag.add d b1) in
  check_b "frontier moves" true
    (Hash_id.Set.equal (Dag.frontier d) (Hash_id.Set.singleton b1.Block.hash));
  check_b "duplicate" true (Dag.add d b1 = Error Dag.Duplicate);
  check_b "height genesis" true (Dag.height d genesis.Block.hash = Some 0);
  check_b "height b1" true (Dag.height d b1.Block.hash = Some 1);
  check_i "max height" 1 (Dag.max_height d);
  let orphan = mk_block ~t:20 ~parents:[ Hash_id.digest "unknown" ] "orphan" in
  (match Dag.add d orphan with
  | Error (Dag.Missing_parents missing) -> check_i "one missing" 1 (Hash_id.Set.cardinal missing)
  | _ -> Alcotest.fail "expected missing parents");
  let second_gen =
    Node.genesis_block ~signer:bob_signer ~cert:bob_cert ~timestamp:(ts 0) ()
  in
  check_b "second genesis refused" true (Dag.add d second_gen = Error Dag.Second_genesis)

(* Build the diamond: genesis <- a <- (b, c) <- d *)
let diamond () =
  let d0 = dag_with_genesis () in
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let b = mk_block ~t:20 ~parents:[ a.Block.hash ] "b" in
  let c = mk_block ~t:21 ~parents:[ a.Block.hash ] "c" in
  let d = mk_block ~t:30 ~parents:[ b.Block.hash; c.Block.hash ] "d" in
  let dag =
    List.fold_left (fun acc x -> Result.get_ok (Dag.add acc x)) d0 [ a; b; c; d ]
  in
  (dag, a, b, c, d)

let dag_diamond_queries () =
  let dag, a, b, c, d = diamond () in
  check_i "branch width" 1 (Dag.branch_width dag);
  check_b "frontier = d" true
    (Hash_id.Set.equal (Dag.frontier dag) (Hash_id.Set.singleton d.Block.hash));
  check_b "ancestors of d" true
    (Hash_id.Set.equal
       (Dag.ancestors dag d.Block.hash)
       (Hash_id.Set.of_list
          [ genesis.Block.hash; a.Block.hash; b.Block.hash; c.Block.hash ]));
  check_b "descendants of a" true
    (Hash_id.Set.equal
       (Dag.descendants dag a.Block.hash)
       (Hash_id.Set.of_list [ b.Block.hash; c.Block.hash; d.Block.hash ]));
  check_b "is_ancestor" true
    (Dag.is_ancestor dag ~ancestor:a.Block.hash ~descendant:d.Block.hash);
  check_b "not ancestor (concurrent)" false
    (Dag.is_ancestor dag ~ancestor:b.Block.hash ~descendant:c.Block.hash);
  check_b "height d" true (Dag.height dag d.Block.hash = Some 3);
  check_i "children of a" 2 (Hash_id.Set.cardinal (Dag.children dag a.Block.hash))

let dag_level_frontier () =
  let dag, a, b, c, d = diamond () in
  let lf n = Dag.level_frontier dag n in
  check_b "level 1 = frontier" true (Hash_id.Set.equal (lf 1) (Dag.frontier dag));
  (* level 2 = frontier + parents of frontier *)
  check_b "level 2" true
    (Hash_id.Set.equal (lf 2)
       (Hash_id.Set.of_list [ d.Block.hash; b.Block.hash; c.Block.hash ]));
  check_b "level 3 adds a" true (Hash_id.Set.mem a.Block.hash (lf 3));
  check_b "level 4 adds genesis" true (Hash_id.Set.mem genesis.Block.hash (lf 4));
  check_b "level 10 saturates" true (Hash_id.Set.equal (lf 10) (lf 4));
  (* The recursive definition from the paper: L(n) = L(n-1) union parents(L(n-1)). *)
  for n = 2 to 5 do
    let expected =
      Hash_id.Set.fold
        (fun h acc ->
          List.fold_left
            (fun acc p -> if Dag.mem dag p then Hash_id.Set.add p acc else acc)
            acc (Dag.parents dag h))
        (lf (n - 1))
        (lf (n - 1))
    in
    check_b (Printf.sprintf "paper definition level %d" n) true
      (Hash_id.Set.equal (lf n) expected)
  done;
  Alcotest.check_raises "level 0 invalid"
    (Invalid_argument "Dag.level_frontier: level must be >= 1") (fun () ->
      ignore (lf 0))

let dag_topo_order () =
  let dag, _, _, _, _ = diamond () in
  let order = Dag.topo_order dag in
  check_i "all blocks" 5 (List.length order);
  (* Parents precede children. *)
  let pos =
    List.mapi (fun i b -> (b.Block.hash, i)) order
    |> List.to_seq |> Hash_id.Map.of_seq
  in
  List.iter
    (fun (blk : Block.t) ->
      List.iter
        (fun p ->
          check_b "parent before child" true
            (Hash_id.Map.find p pos < Hash_id.Map.find blk.Block.hash pos))
        blk.Block.parents)
    order;
  (* Canonical: rebuilding the DAG in a different insertion order yields
     the same topological order. *)
  let dag2 =
    List.fold_left
      (fun acc b -> match Dag.add acc b with Ok a -> a | Error _ -> acc)
      (dag_with_genesis ())
      (List.rev (Dag.topo_order dag))
  in
  let dag2 =
    List.fold_left
      (fun acc b -> match Dag.add acc b with Ok a -> a | Error _ -> acc)
      dag2 (Dag.topo_order dag)
  in
  check_b "canonical order" true
    (List.equal Block.equal (Dag.topo_order dag) (Dag.topo_order dag2))

let dag_prune () =
  let dag, a, b, _c, d = diamond () in
  let bytes_before = Dag.byte_size dag in
  Alcotest.check_raises "cannot prune genesis"
    (Invalid_argument "Dag.prune: cannot prune genesis") (fun () ->
      ignore (Dag.prune dag genesis.Block.hash));
  Alcotest.check_raises "cannot prune frontier"
    (Invalid_argument "Dag.prune: cannot prune a frontier block") (fun () ->
      ignore (Dag.prune dag d.Block.hash));
  let dag = Dag.prune dag a.Block.hash in
  check_b "pruned gone" false (Dag.mem dag a.Block.hash);
  check_b "archived" true (Dag.is_archived dag a.Block.hash);
  check_i "archived count" 1 (Dag.archived_count dag);
  check_b "height retained" true (Dag.height dag a.Block.hash = Some 1);
  check_b "bytes decreased" true (Dag.byte_size dag < bytes_before);
  (* New block on top of pruned history is accepted. *)
  let e = mk_block ~t:40 ~parents:[ b.Block.hash ] "e" in
  check_b "extends pruned dag" true (Result.is_ok (Dag.add dag e));
  (* Prune is a no-op for unknown hashes. *)
  check_b "noop" true (Dag.prune dag (Hash_id.digest "nothing") == dag)

(* ------------------------------------------------------------------ *)
(* Validation                                                           *)

let membership_of_genesis () =
  match Validation.check_genesis genesis with
  | Ok m -> m
  | Error e -> Alcotest.failf "genesis invalid: %a" Validation.pp_error e

let validation_genesis () =
  let m = membership_of_genesis () in
  check_b "owner is member" true
    (Membership.is_member m owner_cert.Certificate.user_id);
  (* Genesis missing the owner cert is rejected. *)
  let bad =
    Block.create ~signer:owner_signer ~creator:owner_cert.Certificate.user_id
      ~timestamp:(ts 0) ~parents:[] [ add_tx "not a cert" ]
  in
  (match Validation.check_genesis bad with
  | Error (Validation.Malformed_genesis _) -> ()
  | _ -> Alcotest.fail "genesis without cert accepted");
  (* Genesis whose cert subject is not the creator is rejected. *)
  let mismatched =
    Block.create ~signer:owner_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 0) ~parents:[]
      [ Transaction.add_user owner_cert ]
  in
  match Validation.check_genesis mismatched with
  | Error (Validation.Malformed_genesis _) -> ()
  | _ -> Alcotest.fail "mismatched genesis accepted"

let validation_four_checks () =
  (* Build membership + dag from genesis, then exercise each check. *)
  let m =
    let m = membership_of_genesis () in
    let m = Result.get_ok (Membership.add m alice_cert) in
    Result.get_ok (Membership.add m bob_cert)
  in
  let dag = dag_with_genesis () in
  let ok_block = mk_block ~t:100 ~parents:[ genesis.Block.hash ] "ok" in
  check_b "valid block passes" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) ok_block = Ok ());
  (* 1: unknown creator *)
  let stranger = Signer.oracle ~signature_size:64 ~id:"stranger" () in
  let sb =
    Block.create ~signer:stranger
      ~creator:(Signer.user_id_of_public stranger.Signer.public)
      ~timestamp:(ts 100) ~parents:[ genesis.Block.hash ] []
  in
  check_b "unknown creator" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) sb
    = Error Validation.Unknown_creator);
  (* 2: missing parents *)
  let mp = mk_block ~t:100 ~parents:[ Hash_id.digest "ghost" ] "mp" in
  (match Validation.check_block ~membership:m ~dag ~now:(ts 200) mp with
  | Error (Validation.Missing_parents _) -> ()
  | _ -> Alcotest.fail "missing parents undetected");
  (* 3a: timestamp must exceed parents' *)
  let old = mk_block ~t:0 ~parents:[ genesis.Block.hash ] "old" in
  check_b "stale timestamp" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) old
    = Error Validation.Timestamp_not_after_parents);
  (* 3b: timestamp must not be in the validator's future *)
  let future = mk_block ~t:999_999 ~parents:[ genesis.Block.hash ] "future" in
  check_b "future timestamp" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) future
    = Error Validation.Timestamp_in_future);
  (* clock skew tolerated *)
  let slightly_ahead = mk_block ~t:202 ~parents:[ genesis.Block.hash ] "ahead" in
  check_b "skew tolerated" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) slightly_ahead = Ok ());
  (* 4: signature matches creator: bob signing as alice *)
  let forged =
    Block.create ~signer:bob_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 100) ~parents:[ genesis.Block.hash ] []
  in
  check_b "forged signature" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 200) forged
    = Error Validation.Bad_signature);
  check_b "transient classification" true
    (Validation.is_transient Validation.Unknown_creator
    && Validation.is_transient (Validation.Missing_parents Hash_id.Set.empty)
    && (not (Validation.is_transient Validation.Bad_signature))
    && not (Validation.is_transient Validation.Revoked_creator))

let validation_revocation_causality () =
  (* Revocation only kills blocks that causally follow it. *)
  let m = membership_of_genesis () in
  let m = Result.get_ok (Membership.add m alice_cert) in
  let dag = dag_with_genesis () in
  (* Revocation block by owner. *)
  let revoke_block =
    Block.create ~signer:owner_signer ~creator:owner_cert.Certificate.user_id
      ~timestamp:(ts 50) ~parents:[ genesis.Block.hash ]
      [ Transaction.revoke_user alice_cert ]
  in
  let dag = Result.get_ok (Dag.add dag revoke_block) in
  let m = Result.get_ok (Membership.revoke m alice_cert ~revoked_in:revoke_block.Block.hash) in
  (* Alice's block concurrent with the revocation (parent = genesis). *)
  let concurrent = mk_block ~t:60 ~parents:[ genesis.Block.hash ] "conc" in
  check_b "concurrent block tolerated (transient)" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 100) concurrent
    = Error Validation.Unknown_creator);
  (* Alice's block after the revocation (descends from it). *)
  let after = mk_block ~t:70 ~parents:[ revoke_block.Block.hash ] "after" in
  check_b "post-revocation block rejected" true
    (Validation.check_block ~membership:m ~dag ~now:(ts 100) after
    = Error Validation.Revoked_creator)

(* ------------------------------------------------------------------ *)
(* Membership                                                           *)

let membership_two_phase () =
  let m = membership_of_genesis () in
  let m = Result.get_ok (Membership.add m alice_cert) in
  check_b "member" true (Membership.is_member m alice_cert.Certificate.user_id);
  check_b "role" true (Membership.role m alice_cert.Certificate.user_id = Some "medic");
  check_i "cardinal" 2 (Membership.cardinal m);
  let rb = Hash_id.digest "revocation-block" in
  let m = Result.get_ok (Membership.revoke m alice_cert ~revoked_in:rb) in
  check_b "revoked" false (Membership.is_member m alice_cert.Certificate.user_id);
  check_b "revoked_in" true
    (Membership.revoked_in m alice_cert.Certificate.user_id = Some rb);
  (* 2P: re-adding after revocation does not resurrect. *)
  let m = Result.get_ok (Membership.add m alice_cert) in
  check_b "no resurrection" false (Membership.is_member m alice_cert.Certificate.user_id);
  (* Unsigned cert refused. *)
  let mallory = Signer.oracle ~signature_size:64 ~id:"mallory2" () in
  let self = Certificate.self_signed ~signer:mallory ~role:"ca" in
  check_b "non-CA-signed refused" true (Membership.add m self = Error Membership.Not_ca_signed)

(* ------------------------------------------------------------------ *)
(* CSM                                                                  *)

let csm_applies_genesis_and_txs () =
  let csm, _ = Csm.apply_block Csm.empty genesis in
  check_b "membership bootstrapped" true (Csm.membership csm <> None);
  check_b "log exists" true
    (Vegvisir_crdt.Store.find (Csm.store csm) "log" <> None);
  check_b "alice enrolled" true
    (Csm.role_of csm alice_cert.Certificate.user_id = Some "medic");
  let b1 =
    Block.create ~signer:alice_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 10) ~parents:[ genesis.Block.hash ]
      [ add_tx "entry-1"; add_tx "entry-2" ]
  in
  let csm, results = Csm.apply_block csm b1 in
  check_i "two tx results" 2 (List.length results);
  check_b "all ok" true (List.for_all (fun r -> r.Csm.outcome = Ok ()) results);
  (match Csm.query csm ~crdt:"log" ~op:"size" [] with
  | Ok (Value.Int 2) -> ()
  | _ -> Alcotest.fail "size");
  (* Re-applying the same block is a no-op. *)
  let csm', results' = Csm.apply_block csm b1 in
  check_i "idempotent" 0 (List.length results');
  check_b "state unchanged" true (Csm.converged csm csm')

let csm_rejects_invalid_txs () =
  let csm, _ = Csm.apply_block Csm.empty genesis in
  let bad_block =
    Block.create ~signer:alice_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 10) ~parents:[ genesis.Block.hash ]
      [
        Transaction.make ~crdt:"log" ~op:"add" [ Value.Int 3 ] (* type error *);
        Transaction.make ~crdt:"ghost" ~op:"add" [ Value.String "x" ];
        Transaction.make ~crdt:"log" ~op:"remove" [ Value.String "x" ] (* gset has no remove *);
        add_tx "good";
      ]
  in
  let csm, results = Csm.apply_block csm bad_block in
  let errs = List.filter (fun r -> Result.is_error r.Csm.outcome) results in
  check_i "three rejected" 3 (List.length errs);
  check_i "rejected counted" 3 (Csm.rejected_tx_count csm);
  (match Csm.query csm ~crdt:"log" ~op:"mem" [ Value.String "good" ] with
  | Ok (Value.Bool true) -> ()
  | _ -> Alcotest.fail "good tx applied")

let csm_membership_rules () =
  let csm, _ = Csm.apply_block Csm.empty genesis in
  (* Alice (not CA, not subject) cannot revoke bob. *)
  let attempt =
    Block.create ~signer:alice_signer ~creator:alice_cert.Certificate.user_id
      ~timestamp:(ts 10) ~parents:[ genesis.Block.hash ]
      [ Transaction.revoke_user bob_cert ]
  in
  let csm, results = Csm.apply_block csm attempt in
  check_b "non-CA revocation rejected" true
    (List.exists (fun r -> Result.is_error r.Csm.outcome) results);
  check_b "bob still member" true
    (Csm.role_of csm bob_cert.Certificate.user_id = Some "member");
  (* Bob may self-revoke. *)
  let self_revoke =
    Block.create ~signer:bob_signer ~creator:bob_cert.Certificate.user_id
      ~timestamp:(ts 20) ~parents:[ genesis.Block.hash ]
      [ Transaction.revoke_user bob_cert ]
  in
  let csm, results = Csm.apply_block csm self_revoke in
  check_b "self-revocation ok" true
    (List.for_all (fun r -> Result.is_ok r.Csm.outcome) results);
  check_b "bob gone" true (Csm.role_of csm bob_cert.Certificate.user_id = None)

let csm_deterministic_across_orders () =
  (* Apply the diamond's blocks in two different topological orders and
     check the CSM states coincide. *)
  let _, a, b, c, d = diamond () in
  let apply_seq blocks =
    List.fold_left (fun csm blk -> fst (Csm.apply_block csm blk)) Csm.empty blocks
  in
  let s1 = apply_seq [ genesis; a; b; c; d ] in
  let s2 = apply_seq [ genesis; a; c; b; d ] in
  check_b "orders converge" true (Csm.converged s1 s2)

(* ------------------------------------------------------------------ *)
(* Witness                                                              *)

let witness_counting () =
  let dag, a, b, _c, _d = diamond () in
  (* a's descendants b,c,d are all by alice = a's creator: no witnesses. *)
  check_i "same-creator descendants don't witness" 0
    (Witness.witness_count dag a.Block.hash);
  (* Bob appends on top: one witness for everything above. *)
  let w =
    Block.create ~signer:bob_signer ~creator:bob_cert.Certificate.user_id
      ~timestamp:(ts 50)
      ~parents:(Hash_id.Set.elements (Dag.frontier dag))
      []
  in
  let dag = Result.get_ok (Dag.add dag w) in
  check_i "bob witnesses a" 1 (Witness.witness_count dag a.Block.hash);
  check_b "proof k=1" true (Witness.has_proof dag a.Block.hash ~k:1);
  check_b "no proof k=2" false (Witness.has_proof dag a.Block.hash ~k:2);
  (* Proof covers ancestors. *)
  let proven = Witness.proven_ancestors dag b.Block.hash ~k:1 in
  check_b "ancestors proven" true
    (Hash_id.Set.mem a.Block.hash proven && Hash_id.Set.mem genesis.Block.hash proven);
  check_b "unknown hash no witnesses" true
    (Hash_id.Set.is_empty (Witness.witnesses dag (Hash_id.digest "none")))

(* ------------------------------------------------------------------ *)
(* Reconcile                                                            *)

let reconcile_message_roundtrip () =
  let msgs =
    [
      Reconcile.Frontier_request { level = 3 };
      Reconcile.Frontier_reply { level = 2; blocks = [ genesis ] };
      Reconcile.Sync_request
        { frontier = [ genesis.Block.hash ]; recent = [ Hash_id.digest "r" ] };
      Reconcile.Sync_reply { blocks = [ genesis ] };
      Reconcile.Bloom_request { filter = "\x01\x02\xff" };
      Reconcile.Bloom_reply { blocks = [ genesis ] };
      Reconcile.Blocks_request
        { hashes = [ genesis.Block.hash; Hash_id.digest "q" ] };
      Reconcile.Blocks_reply { blocks = [ genesis ] };
      Reconcile.Digest_request
        {
          upto = 7;
          intervals =
            [
              { Reconcile.lo = 0; hi = 3; digest = "\x00abc" };
              { Reconcile.lo = 4; hi = 7; digest = "" };
            ];
        };
      Reconcile.Digest_reply
        {
          splits = [ { Reconcile.lo = 0; hi = 1; digest = "dd" } ];
          leaves =
            [
              {
                Reconcile.lo = 2;
                hi = 3;
                hashes = [ genesis.Block.hash; Hash_id.digest "leaf" ];
              };
            ];
        };
      Reconcile.Trace_context
        { trace = "f93a1d00c4b2e871"; span = "0102aabbccddeeff" };
      Reconcile.Trace_context { trace = ""; span = "" };
    ]
  in
  List.iter
    (fun m ->
      let b = Buffer.create 64 in
      Reconcile.encode_message b m;
      let c = Wire.cursor (Buffer.contents b) in
      let m' = Reconcile.decode_message c in
      check_b "message roundtrip" true (Reconcile.message_equal m m');
      check_i "message_size" (Buffer.length b) (Reconcile.message_size m))
    msgs

let reconcile_trace_identity () =
  let initiator = Hash_id.digest "initiator-a" in
  let trace, span = Reconcile.session_trace_ids ~initiator ~generation:7 in
  let trace', span' = Reconcile.session_trace_ids ~initiator ~generation:7 in
  check_b "ids deterministic" true
    (String.equal trace trace' && String.equal span span');
  check_i "trace id is 16 hex chars" 16 (String.length trace);
  check_i "span id is 16 hex chars" 16 (String.length span);
  check_b "hex alphabet" true
    (String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       (trace ^ span));
  let trace2, _ = Reconcile.session_trace_ids ~initiator ~generation:8 in
  check_b "generation changes the trace id" false (String.equal trace trace2);
  let other, _ =
    Reconcile.session_trace_ids
      ~initiator:(Hash_id.digest "initiator-b")
      ~generation:7
  in
  check_b "initiator changes the trace id" false (String.equal trace other);
  check_b "rate 0 never samples" false
    (Reconcile.trace_sampled ~initiator ~generation:7 ~rate:0.);
  check_b "rate 1 always samples" true
    (Reconcile.trace_sampled ~initiator ~generation:7 ~rate:1.);
  (* The decision is a deterministic hash threshold, so it is stable
     across calls and monotone in the rate. *)
  let d = Reconcile.trace_sampled ~initiator ~generation:7 ~rate:0.5 in
  check_b "sampling deterministic" true
    (Bool.equal d (Reconcile.trace_sampled ~initiator ~generation:7 ~rate:0.5));
  if d then
    check_b "monotone in rate" true
      (Reconcile.trace_sampled ~initiator ~generation:7 ~rate:0.9);
  let kept = ref 0 in
  for g = 0 to 999 do
    if Reconcile.trace_sampled ~initiator ~generation:g ~rate:0.5 then incr kept
  done;
  check_b "rate 0.5 keeps roughly half" true (!kept > 350 && !kept < 650)

let reconcile_modes_converge () =
  let dag, _, _, _, _ = diamond () in
  List.iter
    (fun mode ->
      let base = dag_with_genesis () in
      let merged, stats = Reconcile.sync_dags mode base dag in
      check_i "all transferred" (Dag.cardinal dag) (Dag.cardinal merged);
      check_b "rounds positive" true (stats.Reconcile.rounds >= 1);
      (* Syncing identical DAGs transfers nothing new. *)
      let merged2, stats2 = Reconcile.sync_dags mode merged dag in
      check_i "idempotent" (Dag.cardinal merged) (Dag.cardinal merged2);
      check_i "single round when identical" 1 stats2.Reconcile.rounds)
    [ Reconcile.Naive; Reconcile.Indexed; Reconcile.Bloom; Reconcile.Digest ]

let reconcile_escalation_depth () =
  let a, b, _ = (fun () ->
      let sa = Signer.oracle ~signature_size:64 ~id:"ra" () in
      let ca = Certificate.self_signed ~signer:sa ~role:"ca" in
      let g = Node.genesis_block ~signer:sa ~cert:ca ~timestamp:(ts 0)
          ~extra:[ Transaction.create_crdt ~name:"log" log_spec ] () in
      let na = Node.create ~signer:sa ~cert:ca () in
      let nb = Node.create ~signer:sa ~cert:ca () in
      ignore (Node.receive na ~now:(ts 1) g);
      ignore (Node.receive nb ~now:(ts 1) g);
      (na, nb, g)) ()
  in
  (* b gets a chain of depth 5. *)
  for i = 1 to 5 do
    match Node.prepare_transaction b ~crdt:"log" ~op:"add" [ Value.String (string_of_int i) ] with
    | Ok tx -> ignore (Node.append b ~now:(ts (i * 10)) [ tx ])
    | Error _ -> Alcotest.fail "prepare"
  done;
  let _, stats = Reconcile.sync_dags Reconcile.Naive (Node.dag a) (Node.dag b) in
  check_i "naive rounds = divergence depth" 5 stats.Reconcile.rounds;
  let _, istats = Reconcile.sync_dags Reconcile.Indexed (Node.dag a) (Node.dag b) in
  check_i "indexed single round" 1 istats.Reconcile.rounds;
  check_b "indexed fewer bytes" true
    (istats.Reconcile.bytes_received < stats.Reconcile.bytes_received)

let reconcile_respond_ignores_replies () =
  let dag = dag_with_genesis () in
  check_b "reply gets no response" true
    (Reconcile.respond dag (Reconcile.Frontier_reply { level = 1; blocks = [] }) = None);
  check_b "sync reply gets no response" true
    (Reconcile.respond dag (Reconcile.Sync_reply { blocks = [] }) = None)

let reconcile_block_requests () =
  let dag, a, _, _, _ = diamond () in
  (* Explicit block request returns exactly the resident blocks asked for. *)
  (match
     Reconcile.respond dag
       (Reconcile.Blocks_request { hashes = [ a.Block.hash; Hash_id.digest "nope" ] })
   with
  | Some (Reconcile.Blocks_reply { blocks = [ b ] }) ->
    check_b "found the block" true (Block.equal b a)
  | _ -> Alcotest.fail "blocks request");
  (* An empty/garbage bloom filter elicits everything / nothing safely. *)
  match Reconcile.respond dag (Reconcile.Bloom_request { filter = "junk" }) with
  | Some (Reconcile.Bloom_reply { blocks = [] }) -> ()
  | _ -> Alcotest.fail "garbage bloom should yield an empty reply"

(* ------------------------------------------------------------------ *)
(* Support / Offload                                                    *)

let support_chain_rules () =
  let _, a, b, _c, _d = diamond () in
  let chain = Support.empty in
  let chain = Result.get_ok (Support.append chain genesis) in
  let chain = Result.get_ok (Support.append chain a) in
  let chain = Result.get_ok (Support.append chain b) in
  check_i "length" 3 (Support.length chain);
  check_b "contains" true (Support.contains chain a.Block.hash);
  check_b "find" true (Support.find chain a.Block.hash = Some a);
  check_b "verify" true (Support.verify chain);
  check_b "duplicate refused" true (Result.is_error (Support.append chain a));
  check_b "payload order" true
    (List.equal Block.equal (Support.payloads chain) [ genesis; a; b ])

let support_detects_order_violation () =
  let _, a, b, _c, _d = diamond () in
  (* Child before parent: chain verifies false. *)
  let chain = Result.get_ok (Support.append Support.empty b) in
  let chain = Result.get_ok (Support.append chain a) in
  check_b "topological violation detected" false (Support.verify chain)

let offload_superpeer () =
  let dag, a, b, c, d = diamond () in
  ignore dag;
  let sp = Offload.create () in
  (* Absorb out of order: buffering must reorder. *)
  Offload.absorb_all sp [ d; b; c ];
  check_i "buffered while parents missing" 3 (Offload.buffered_count sp);
  Offload.absorb_all sp [ genesis; a ];
  check_i "buffer drained" 0 (Offload.buffered_count sp);
  check_i "dag complete" 5 (Dag.cardinal (Offload.dag sp));
  let archived = Offload.flush sp in
  check_i "all archived" 5 archived;
  check_b "chain valid" true (Support.verify (Offload.chain sp));
  check_b "fetch" true (Offload.fetch sp c.Block.hash = Some c);
  check_i "reflush archives nothing" 0 (Offload.flush sp)

let offload_serve_below () =
  let _dag, a, b, c, d = diamond () in
  let sp = Offload.create () in
  Offload.absorb_all sp [ genesis; a; b; c; d ];
  check_b "closure of b, topo order" true
    (List.equal Block.equal [ genesis; a; b ]
       (Offload.serve_below sp [ b.Block.hash ]));
  check_b "closure of b+c shares ancestry" true
    (List.equal Block.equal [ genesis; a; b; c ]
       (Offload.serve_below sp [ b.Block.hash; c.Block.hash ]));
  check_b "unknown hash serves nothing" true
    ([] = Offload.serve_below sp [ Hash_id.digest "nowhere" ]);
  (* A device can replay the reply in order with no buffering. *)
  let n = fresh_node bob_signer bob_cert in
  Node.receive_all n ~now:(ts 1_000) (Offload.serve_below sp [ d.Block.hash ]);
  check_i "full closure replays cleanly" 5 (Dag.cardinal (Node.dag n));
  check_i "nothing left pending" 0 (Node.pending_count n)

(* ------------------------------------------------------------------ *)
(* Node                                                                 *)

let node_buffering_out_of_order () =
  let n = fresh_node bob_signer bob_cert in
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let b = mk_block ~t:20 ~parents:[ a.Block.hash ] "b" in
  (* Child first: buffered; parent arrival drains it. *)
  (match Node.receive n ~now:(ts 100) b with
  | Node.Buffered (Validation.Missing_parents _) -> ()
  | r -> Alcotest.failf "expected buffered, got %a" Node.pp_receive_result r);
  check_i "pending" 1 (Node.pending_count n);
  check_b "parent accepted" true (Node.receive n ~now:(ts 100) a = Node.Accepted);
  check_i "drained" 0 (Node.pending_count n);
  check_i "both in dag" 3 (Dag.cardinal (Node.dag n));
  check_b "duplicate detected" true (Node.receive n ~now:(ts 100) a = Node.Duplicate)

let node_append_reins_frontier () =
  let n = fresh_node bob_signer bob_cert in
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let b = mk_block ~t:11 ~parents:[ genesis.Block.hash ] "b" in
  ignore (Node.receive n ~now:(ts 100) a);
  ignore (Node.receive n ~now:(ts 100) b);
  check_i "two branches" 2 (Hash_id.Set.cardinal (Dag.frontier (Node.dag n)));
  match Node.append n ~now:(ts 200) [] with
  | Ok blk ->
    check_i "reins both branches" 2 (List.length blk.Block.parents);
    check_i "frontier is the new block" 1
      (Hash_id.Set.cardinal (Dag.frontier (Node.dag n)))
  | Error e -> Alcotest.failf "append: %a" Node.pp_append_error e

let node_no_genesis () =
  let n = Node.create ~signer:bob_signer ~cert:bob_cert () in
  match Node.append n ~now:(ts 10) [] with
  | Error Node.No_genesis -> ()
  | _ -> Alcotest.fail "append without genesis"

let node_signer_exhaustion () =
  (* height 2 = 4 one-time keys: the self-signed certificate uses one, the
     genesis block the second, two appends use the rest, and the next
     append must report exhaustion. *)
  let tiny = Signer.mss ~height:2 ~seed:"tiny-node" () in
  let cert = Certificate.self_signed ~signer:tiny ~role:"ca" in
  let g = Node.genesis_block ~signer:tiny ~cert ~timestamp:(ts 0) () in
  let n = Node.create ~signer:tiny ~cert () in
  ignore (Node.receive n ~now:(ts 1) g);
  (match Node.append n ~now:(ts 10) [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "third signature should work: %a" Node.pp_append_error e);
  (match Node.append n ~now:(ts 20) [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fourth signature should work: %a" Node.pp_append_error e);
  match Node.append n ~now:(ts 30) [] with
  | Error Node.Signer_exhausted -> ()
  | _ -> Alcotest.fail "expected exhaustion"

let node_prune_to () =
  let n = fresh_node bob_signer bob_cert in
  for i = 1 to 30 do
    match Node.prepare_transaction n ~crdt:"log" ~op:"add" [ Value.String (string_of_int i) ] with
    | Ok tx -> ignore (Node.append n ~now:(ts (i * 10)) [ tx ])
    | Error _ -> Alcotest.fail "prepare"
  done;
  let before = Dag.byte_size (Node.dag n) in
  let uploaded = ref [] in
  let cap = before / 2 in
  let pruned = Node.prune_to n ~max_bytes:cap ~archived:(fun b -> uploaded := b :: !uploaded) in
  check_b "pruned some" true (pruned > 0);
  check_i "uploads match prunes" pruned (List.length !uploaded);
  check_b "under cap" true (Dag.byte_size (Node.dag n) <= cap);
  check_b "genesis kept" true (Dag.mem (Node.dag n) genesis.Block.hash);
  (* Node still works after pruning. *)
  match Node.append n ~now:(ts 1000) [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "append after prune: %a" Node.pp_append_error e

let reconcile_digest_extension () =
  let dag, _, _, _, _ = diamond () in
  (* An initiator that believes history stops below our max height gets
     the uncovered span back as an extension interval to narrow next. *)
  match
    Reconcile.respond dag (Reconcile.Digest_request { upto = 0; intervals = [] })
  with
  | Some (Reconcile.Digest_reply { splits; leaves }) ->
    check_b "extension interval present" true (splits <> [] || leaves <> []);
    List.iter
      (fun (iv : Reconcile.interval) ->
        check_b "extension starts above upto" true (iv.lo >= 1 && iv.hi >= iv.lo))
      splits;
    List.iter
      (fun (l : Reconcile.leaf) ->
        check_b "leaf starts above upto" true (l.lo >= 1 && l.hi >= l.lo))
      leaves
  | _ -> Alcotest.fail "digest request must elicit a digest reply"

let reconcile_foreign_reply_ignored () =
  let dag, _, _, _, _ = diamond () in
  let base = dag_with_genesis () in
  let is_native mode (r : Reconcile.message) =
    match (mode, r) with
    | Reconcile.Naive, Reconcile.Frontier_reply _
    | Reconcile.Indexed, Reconcile.Sync_reply _
    | Reconcile.Bloom, (Reconcile.Bloom_reply _ | Reconcile.Blocks_reply _)
    | Reconcile.Digest, (Reconcile.Digest_reply _ | Reconcile.Blocks_reply _) ->
      true
    | _, _ -> false
  in
  List.iter
    (fun mode ->
      let session, _req = Reconcile.start mode base in
      (* Replies belonging to every other strategy must be Ignored:
         cross-mode frames carry no session progress. *)
      List.iter
        (fun foreign ->
          match Reconcile.handle_reply session dag foreign with
          | _, Reconcile.Ignored -> ()
          | _, (Reconcile.Send _ | Reconcile.Finished _) ->
            Alcotest.failf "mode %s accepted a foreign reply"
              (Reconcile.Mode.to_string mode))
        (List.filter
           (fun r -> not (is_native mode r))
           [
             Reconcile.Frontier_reply { level = 1; blocks = [] };
             Reconcile.Sync_reply { blocks = [] };
             Reconcile.Bloom_reply { blocks = [] };
             Reconcile.Blocks_reply { blocks = [] };
             Reconcile.Digest_reply { splits = []; leaves = [] };
           ]))
    Reconcile.Mode.all

(* ------------------------------------------------------------------ *)
(* Persistence and replay                                               *)

let dag_persistence_roundtrip () =
  let dag, a, _b, _c, _d = diamond () in
  (match Dag.of_string (Dag.to_string dag) with
  | Some dag' ->
    check_i "cardinal" (Dag.cardinal dag) (Dag.cardinal dag');
    check_b "frontier preserved" true
      (Hash_id.Set.equal (Dag.frontier dag) (Dag.frontier dag'));
    check_b "topo order identical" true
      (List.equal Block.equal (Dag.topo_order dag) (Dag.topo_order dag'))
  | None -> Alcotest.fail "dag roundtrip");
  (* With pruned history. *)
  let pruned = Dag.prune dag a.Block.hash in
  (match Dag.of_string (Dag.to_string pruned) with
  | Some dag' ->
    check_b "archived preserved" true (Dag.is_archived dag' a.Block.hash);
    check_b "height of archived preserved" true
      (Dag.height dag' a.Block.hash = Some 1);
    check_i "resident count" (Dag.cardinal pruned) (Dag.cardinal dag')
  | None -> Alcotest.fail "pruned dag roundtrip");
  check_b "garbage rejected" true (Dag.of_string "garbage" = None);
  (* A non-parent-closed image is rejected: drop the genesis bytes by
     encoding only the upper blocks. *)
  let b = Buffer.create 256 in
  Wire.put_list b Block.encode
    (List.filter (fun blk -> not (Block.is_genesis blk)) (Dag.topo_order dag));
  Wire.put_list b (fun _ _ -> ()) [];
  check_b "non-closed image rejected" true (Dag.of_string (Buffer.contents b) = None)

let csm_rebuild_equals_incremental () =
  let n = fresh_node alice_signer alice_cert in
  for i = 1 to 10 do
    match
      Node.prepare_transaction n ~crdt:"log" ~op:"add" [ Value.String (string_of_int i) ]
    with
    | Ok tx -> ignore (Node.append n ~now:(ts (i * 10)) [ tx ])
    | Error _ -> Alcotest.fail "prepare"
  done;
  check_b "rebuild equals incremental" true
    (Csm.converged (Csm.rebuild (Node.dag n)) (Node.csm n));
  (* And across a persisted copy. *)
  match Dag.of_string (Dag.to_string (Node.dag n)) with
  | Some dag' -> check_b "rebuild from persisted" true (Csm.converged (Csm.rebuild dag') (Node.csm n))
  | None -> Alcotest.fail "persist"

let node_key_rotation () =
  let n = fresh_node alice_signer alice_cert in
  let old_id = Node.user_id n in
  (* New key, CA-signed cert. *)
  let signer2 = Signer.oracle ~signature_size:64 ~id:"alice-2" () in
  let cert2 =
    Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer ~subject:signer2
      ~role:"medic"
  in
  (match Node.rotate_key n ~now:(ts 100) ~signer:signer2 ~cert:cert2 with
  | Ok b -> check_i "rotation block has 2 txs" 2 (List.length b.Block.transactions)
  | Error e -> Alcotest.failf "rotate: %a" Node.pp_append_error e);
  check_b "identity switched" false (Hash_id.equal (Node.user_id n) old_id);
  (* The node can still append, now as the new identity. *)
  (match Node.append n ~now:(ts 200) [] with
  | Ok b -> check_b "new creator" true (Hash_id.equal b.Block.creator cert2.Certificate.user_id)
  | Error e -> Alcotest.failf "append after rotate: %a" Node.pp_append_error e);
  (* A second replica accepts the whole history including post-rotation
     blocks, and sees the old identity as revoked. *)
  let m = fresh_node bob_signer bob_cert in
  Node.receive_all m ~now:(ts 300) (Dag.topo_order (Node.dag n));
  check_i "replica has all blocks" (Dag.cardinal (Node.dag n)) (Dag.cardinal (Node.dag m));
  (match Node.membership m with
  | Some mem ->
    check_b "old id revoked" false (Membership.is_member mem old_id);
    check_b "new id member" true (Membership.is_member mem cert2.Certificate.user_id)
  | None -> Alcotest.fail "no membership");
  (* Mismatched cert/signer refused. *)
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Node.rotate_key: certificate does not match the new key")
    (fun () ->
      ignore (Node.rotate_key n ~now:(ts 400) ~signer:alice_signer ~cert:cert2))

let decoder_fuzz () =
  (* No decoder entry point may raise on arbitrary bytes. *)
  let rng = Vegvisir_crypto.Rng.create 321L in
  for _ = 1 to 500 do
    let junk = Vegvisir_crypto.Rng.bytes rng (Vegvisir_crypto.Rng.int rng 200) in
    ignore (Block.of_string junk);
    ignore (Certificate.of_string junk);
    ignore (Dag.of_string junk);
    ignore (Wire.decode_string Reconcile.decode_message junk);
    ignore (Vegvisir_crdt.Value.of_string junk);
    ignore (Vegvisir_crdt.Schema.of_string junk)
  done

(* ------------------------------------------------------------------ *)
(* Incremental DAG indices                                              *)

let dag_incremental_indices () =
  let dag, _a, b, _c, d = diamond () in
  check_i "max_height cached" 3 (Dag.max_height dag);
  check_i "alice creator count" 4
    (Dag.creator_count dag alice_cert.Certificate.user_id);
  check_i "owner creator count" 1
    (Dag.creator_count dag owner_cert.Certificate.user_id);
  check_i "unknown creator count" 0 (Dag.creator_count dag (Hash_id.digest "x"));
  check_i "by_creator agrees" 4
    (Option.value ~default:0
       (Hash_id.Map.find_opt alice_cert.Certificate.user_id (Dag.by_creator dag)));
  check_b "below = self + ancestors" true
    (Hash_id.Set.equal
       (Dag.below dag [ b.Block.hash ])
       (Hash_id.Set.add b.Block.hash (Dag.ancestors dag b.Block.hash)));
  check_b "below of frontier covers everything" true
    (Hash_id.Set.equal (Dag.below dag [ d.Block.hash ]) (Hash_id.Set.of_list
       (List.map (fun (b : Block.t) -> b.Block.hash) (Dag.blocks dag))));
  check_b "below unknown empty" true
    (Hash_id.Set.is_empty (Dag.below dag [ Hash_id.digest "x" ]));
  (* Memoized repeat answers the same. *)
  check_b "below memo stable" true
    (Hash_id.Set.equal (Dag.below dag [ b.Block.hash ])
       (Dag.below dag [ b.Block.hash ]));
  check_b "topo_seq mirrors topo_order" true
    (List.equal Block.equal (Dag.topo_order dag)
       (List.of_seq (Dag.topo_seq dag)));
  check_i "blocks_seq covers all" 5 (Seq.length (Dag.blocks_seq dag))

let witness_index_monotone_under_prune () =
  let d0 = dag_with_genesis () in
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let w =
    mk_block ~signer:bob_signer ~creator:bob_cert.Certificate.user_id ~t:20
      ~parents:[ a.Block.hash ] "w"
  in
  let x = mk_block ~t:30 ~parents:[ w.Block.hash ] "x" in
  let dag =
    List.fold_left (fun acc b -> Result.get_ok (Dag.add acc b)) d0 [ a; w; x ]
  in
  let bob = bob_cert.Certificate.user_id in
  check_b "index matches oracle pre-prune" true
    (Hash_id.Set.equal
       (Dag.witness_set dag a.Block.hash)
       (Witness.oracle_witnesses dag a.Block.hash));
  check_b "bob witnesses a" true
    (Hash_id.Set.mem bob (Dag.witness_set dag a.Block.hash));
  let dag = Dag.prune dag w.Block.hash in
  (* The witnessing block is gone: the oracle forgets, the index (a §IV-H
     storage proof is evidence) deliberately does not. *)
  check_b "oracle forgets pruned witness" false
    (Hash_id.Set.mem bob (Witness.oracle_witnesses dag a.Block.hash));
  check_b "index retains pruned witness" true
    (Hash_id.Set.mem bob (Dag.witness_set dag a.Block.hash));
  check_i "pruned creator count drops" 0 (Dag.creator_count dag bob);
  check_b "pruned block has no witness entry" true
    (Hash_id.Set.is_empty (Dag.witness_set dag w.Block.hash))

let pending_pool_basics () =
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let b = mk_block ~t:20 ~parents:[ a.Block.hash ] "b" in
  let c = mk_block ~t:30 ~parents:[ b.Block.hash ] "c" in
  let hashes p = List.map (fun (x : Block.t) -> x.Block.hash) (Pending_pool.blocks p) in
  let p = Pending_pool.create ~capacity:2 () in
  check_b "empty" true (Pending_pool.is_empty p);
  let p = Pending_pool.add (Pending_pool.add p a) a in
  check_i "dedup by hash" 1 (Pending_pool.cardinal p);
  let p = Pending_pool.add p b in
  check_b "oldest first" true
    (List.equal Hash_id.equal [ a.Block.hash; b.Block.hash ] (hashes p));
  let p = Pending_pool.add p c in
  check_i "capacity bound" 2 (Pending_pool.cardinal p);
  check_b "oldest evicted" true
    (List.equal Hash_id.equal [ b.Block.hash; c.Block.hash ] (hashes p));
  check_b "evicted not member" false (Pending_pool.mem p a.Block.hash);
  let p = Pending_pool.remove p b.Block.hash in
  check_b "remove" true (List.equal Hash_id.equal [ c.Block.hash ] (hashes p));
  let p = Pending_pool.remove p (Hash_id.digest "x") in
  check_i "remove unknown is a no-op" 1 (Pending_pool.cardinal p);
  check_b "to_seq mirrors blocks" true
    (List.equal Block.equal (Pending_pool.blocks p)
       (List.of_seq (Pending_pool.to_seq p)))

let pending_pool_advertised_eviction () =
  let a = mk_block ~t:10 ~parents:[ genesis.Block.hash ] "a" in
  let b = mk_block ~t:20 ~parents:[ a.Block.hash ] "b" in
  let c = mk_block ~t:30 ~parents:[ b.Block.hash ] "c" in
  let d = mk_block ~t:40 ~parents:[ c.Block.hash ] "d" in
  let hashes p =
    List.map (fun (x : Block.t) -> x.Block.hash) (Pending_pool.blocks p)
  in
  let p = Pending_pool.create ~capacity:2 () in
  let p = Pending_pool.add (Pending_pool.add p a) b in
  (* Advertising the oldest entry shields it: eviction takes the oldest
     never-advertised block instead. *)
  let p = Pending_pool.advertise p a.Block.hash in
  check_b "advertised recorded" true (Pending_pool.advertised p a.Block.hash);
  check_b "unadvertised stays false" false (Pending_pool.advertised p b.Block.hash);
  let p = Pending_pool.add p c in
  check_b "cold block evicted before advertised elder" true
    (List.equal Hash_id.equal [ a.Block.hash; c.Block.hash ] (hashes p));
  (* All advertised: falls back to plain oldest-first. *)
  let p = Pending_pool.advertise p c.Block.hash in
  let p = Pending_pool.add p d in
  check_b "all-advertised falls back to oldest" true
    (List.equal Hash_id.equal [ c.Block.hash; d.Block.hash ] (hashes p));
  (* Advertising an absent hash is a no-op. *)
  let p = Pending_pool.advertise p (Hash_id.digest "ghost") in
  check_i "ghost advertise no-op" 2 (Pending_pool.cardinal p);
  (* Drain order ignores advertisement state entirely. *)
  check_b "to_seq still insertion-ordered" true
    (List.equal Block.equal (Pending_pool.blocks p)
       (List.of_seq (Pending_pool.to_seq p)))

let node_pending_eviction () =
  let n = Node.create ~max_pending:2 ~signer:bob_signer ~cert:bob_cert () in
  (match Node.receive n ~now:(ts 1) genesis with
  | Node.Accepted -> ()
  | r -> Alcotest.failf "genesis not accepted: %a" Node.pp_receive_result r);
  let mk_pair i =
    let p =
      mk_block ~t:(10 * i) ~parents:[ genesis.Block.hash ] (Printf.sprintf "p%d" i)
    in
    let o =
      mk_block ~t:((10 * i) + 5) ~parents:[ p.Block.hash ] (Printf.sprintf "o%d" i)
    in
    (p, o)
  in
  let p1, o1 = mk_pair 1 and p2, o2 = mk_pair 2 and p3, o3 = mk_pair 3 in
  (* Orphans first: all buffered, the oldest evicted at capacity. *)
  Node.receive_all n ~now:(ts 1_000) [ o1; o2; o3 ];
  check_i "pending capped" 2 (Node.pending_count n);
  check_b "dependencies tracked" true
    (Hash_id.Set.mem p2.Block.hash (Node.missing_dependencies n));
  check_b "evicted dependency forgotten" false
    (Hash_id.Set.mem p1.Block.hash (Node.missing_dependencies n));
  Node.receive_all n ~now:(ts 1_000) [ p1; p2; p3 ];
  check_i "survivors drained" 0 (Node.pending_count n);
  (* o1 was evicted; everything else landed. *)
  check_i "all but evicted accepted" 6 (Dag.cardinal (Node.dag n));
  check_b "evicted orphan lost" false (Dag.mem (Node.dag n) o1.Block.hash);
  (* Redelivery recovers it — eviction is back-pressure, not rejection. *)
  ignore (Node.receive n ~now:(ts 1_000) o1);
  check_i "redelivered" 7 (Dag.cardinal (Node.dag n))

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)

(* Random DAG with interleaved adds (3 creators, occasional out-of-order
   timestamps), prunes, and index queries — exercising every cache state
   of the incremental indices. Returns the DAG and whether any prune
   happened (witness-index equality only holds prune-free). *)
let random_indexed_dag script =
  let creators =
    [|
      (alice_signer, alice_cert); (bob_signer, bob_cert); (owner_signer, owner_cert);
    |]
  in
  let dag = ref (dag_with_genesis ()) in
  let resident = ref [ genesis.Block.hash ] in
  let pruned = ref false in
  List.iteri
    (fun i pick ->
      match pick mod 6 with
      | 5 ->
        (* Query between mutations: populate the memoized caches so the
           next add/prune starts from a non-Dirty state. *)
        ignore (Dag.topo_order !dag);
        ignore (Dag.below !dag [ genesis.Block.hash ])
      | 4 -> begin
        let frontier = Dag.frontier !dag in
        let candidates =
          List.filter
            (fun (b : Block.t) ->
              (not (Block.is_genesis b))
              && not (Hash_id.Set.mem b.Block.hash frontier))
            (Dag.topo_order !dag)
        in
        match candidates with
        | [] -> ()
        | _ :: _ ->
          let b = List.nth candidates (pick mod List.length candidates) in
          dag := Dag.prune !dag b.Block.hash;
          pruned := true;
          resident :=
            List.filter
              (fun h -> not (Hash_id.equal h b.Block.hash))
              !resident
      end
      | r ->
        let signer, cert = creators.(r mod 3) in
        let parents =
          List.filteri (fun j _ -> (j + pick) mod 3 <> 0) !resident
          |> fun l -> if l = [] then [ genesis.Block.hash ] else l
        in
        (* Every 7th insertion back-dates its timestamp, forcing the
           out-of-order slow path of the topo cache. *)
        let t = if pick mod 7 = 0 then i + 2 else (i + 2) * 10 in
        let b =
          mk_block ~signer ~creator:cert.Certificate.user_id ~t ~parents
            (Printf.sprintf "r%d" i)
        in
        (match Dag.add !dag b with
        | Ok d ->
          dag := d;
          resident := b.Block.hash :: !resident
        | Error _ -> ()))
    script;
  (!dag, !pruned)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random DAG pairs reconcile to equality" ~count:30
      (pair (list_of_size Gen.(0 -- 12) (int_range 0 2)) int64)
      (fun (script, seed) ->
        (* Two replicas apply random appends/syncs; at the end a mutual
           sync must make the DAGs equal. *)
        let rng = Vegvisir_crypto.Rng.create seed in
        let na = fresh_node alice_signer alice_cert in
        let nb = fresh_node bob_signer bob_cert in
        let t = ref 100 in
        List.iter
          (fun cmd ->
            incr t;
            let target = if Vegvisir_crypto.Rng.bool rng then na else nb in
            match cmd with
            | 0 | 1 -> begin
              match
                Node.prepare_transaction target ~crdt:"log" ~op:"add"
                  [ Value.String (Printf.sprintf "e%d" !t) ]
              with
              | Ok tx -> ignore (Node.append target ~now:(ts (!t * 10)) [ tx ])
              | Error _ -> ()
            end
            | _ ->
              let merged, _ = Reconcile.sync_dags Reconcile.Indexed (Node.dag na) (Node.dag nb) in
              Node.receive_all na ~now:(ts 1_000_000) (Dag.topo_order merged))
          script;
        let ma, _ = Reconcile.sync_dags Reconcile.Indexed (Node.dag na) (Node.dag nb) in
        let mb, _ = Reconcile.sync_dags Reconcile.Indexed (Node.dag nb) (Node.dag na) in
        Node.receive_all na ~now:(ts 2_000_000) (Dag.topo_order ma);
        Node.receive_all nb ~now:(ts 2_000_000) (Dag.topo_order mb);
        Hash_id.Set.equal (Dag.frontier (Node.dag na)) (Dag.frontier (Node.dag nb))
        && Csm.converged (Node.csm na) (Node.csm nb));
    Test.make ~name:"topo_order always lists parents first" ~count:30
      (list_of_size Gen.(0 -- 15) (int_range 0 9))
      (fun picks ->
        (* Random DAG: each new block picks a random subset of current
           frontier plus possibly older blocks as parents. *)
        let dag = ref (dag_with_genesis ()) in
        let all = ref [ genesis.Block.hash ] in
        List.iteri
          (fun i pick ->
            let parents =
              List.filteri (fun j _ -> (j + pick) mod 3 <> 0) !all
              |> fun l -> if l = [] then [ genesis.Block.hash ] else l
            in
            let b = mk_block ~t:((i + 1) * 10) ~parents (string_of_int i) in
            match Dag.add !dag b with
            | Ok d ->
              dag := d;
              all := b.Block.hash :: !all
            | Error _ -> ())
          picks;
        let order = Dag.topo_order !dag in
        let seen = Hashtbl.create 16 in
        List.for_all
          (fun (b : Block.t) ->
            let ok = List.for_all (Hashtbl.mem seen) b.Block.parents in
            Hashtbl.replace seen b.Block.hash ();
            ok)
          order);
    Test.make ~name:"level frontier is monotone in level" ~count:30
      (list_of_size Gen.(0 -- 10) (int_range 0 5))
      (fun picks ->
        let dag = ref (dag_with_genesis ()) in
        let frontier_blocks = ref [ genesis.Block.hash ] in
        List.iteri
          (fun i pick ->
            let parents = [ List.nth !frontier_blocks (pick mod List.length !frontier_blocks) ] in
            let b = mk_block ~t:((i + 1) * 10) ~parents (string_of_int i) in
            match Dag.add !dag b with
            | Ok d ->
              dag := d;
              frontier_blocks := b.Block.hash :: !frontier_blocks
            | Error _ -> ())
          picks;
        let rec check n =
          n > 8
          || Hash_id.Set.subset
               (Dag.level_frontier !dag n)
               (Dag.level_frontier !dag (n + 1))
             && check (n + 1)
        in
        check 1);
    Test.make ~name:"incremental topo order == fresh Kahn (byte-identical)"
      ~count:50
      (list_of_size Gen.(0 -- 25) (int_range 0 30))
      (fun script ->
        let dag, _ = random_indexed_dag script in
        List.equal Block.equal (Dag.topo_order dag) (Dag.Oracle.topo_order dag)
        &&
        (* The persisted image (encode walks the cached order) survives a
           decode/re-encode round trip byte-identically. *)
        let img = Dag.to_string dag in
        match Dag.of_string img with
        | None -> false
        | Some dag' -> String.equal img (Dag.to_string dag'));
    Test.make ~name:"incremental witness index vs descendant-BFS oracle"
      ~count:50
      (list_of_size Gen.(0 -- 25) (int_range 0 30))
      (fun script ->
        let dag, pruned = random_indexed_dag script in
        List.for_all
          (fun (b : Block.t) ->
            let h = b.Block.hash in
            let index = Dag.witness_set dag h in
            let oracle = Witness.oracle_witnesses dag h in
            (* Equal prune-free; the index is a monotone superset after
               pruning (witness facts survive their witnessing blocks). *)
            if pruned then Hash_id.Set.subset oracle index
            else Hash_id.Set.equal oracle index)
          (Dag.blocks dag));
    Test.make ~name:"below vs per-hash ancestors-union oracle" ~count:50
      (pair
         (list_of_size Gen.(0 -- 25) (int_range 0 30))
         (list_of_size Gen.(0 -- 4) (int_range 0 30)))
      (fun (script, seed_picks) ->
        let dag, _ = random_indexed_dag script in
        let order = Dag.topo_order dag in
        let seeds =
          Hash_id.digest "unknown-seed"
          :: List.filter_map
               (fun p ->
                 match List.nth_opt order (p mod max 1 (List.length order)) with
                 | Some b -> Some b.Block.hash
                 | None -> None)
               seed_picks
        in
        let expected = Dag.Oracle.below dag seeds in
        Hash_id.Set.equal (Dag.below dag seeds) expected
        (* Second query returns the memo: still equal, still fresh. *)
        && Hash_id.Set.equal (Dag.below dag seeds) expected
        (* A different seed list must not be served the stale memo. *)
        && Hash_id.Set.equal
             (Dag.below dag [ genesis.Block.hash ])
             (Dag.Oracle.below dag [ genesis.Block.hash ]));
    Test.make ~name:"reconcile messages survive the wire" ~count:200 int64
      (fun seed ->
        (* Every constructor: decode (encode m) = m, re-encoding is
           byte-identical, message_size agrees with the framed length,
           and no truncation or tag mutation of the frame can raise out
           of the decoder (Wire.decode_string is total). *)
        let rng = Vegvisir_crypto.Rng.create seed in
        let rint n = Vegvisir_crypto.Rng.int rng n in
        let rhash () = Hash_id.digest (Vegvisir_crypto.Rng.bytes rng 8) in
        let rhashes () = List.init (rint 4) (fun _ -> rhash ()) in
        let rblocks () = if rint 2 = 0 then [] else [ genesis ] in
        let rinterval () : Reconcile.interval =
          {
            lo = rint 100;
            hi = rint 100;
            digest = Vegvisir_crypto.Rng.bytes rng (rint 40);
          }
        in
        let rleaf () : Reconcile.leaf =
          { lo = rint 100; hi = rint 100; hashes = rhashes () }
        in
        let msg =
          match rint 11 with
          | 0 -> Reconcile.Frontier_request { level = rint 1000 }
          | 1 ->
            Reconcile.Frontier_reply { level = rint 1000; blocks = rblocks () }
          | 2 ->
            Reconcile.Sync_request { frontier = rhashes (); recent = rhashes () }
          | 3 -> Reconcile.Sync_reply { blocks = rblocks () }
          | 4 ->
            Reconcile.Bloom_request
              { filter = Vegvisir_crypto.Rng.bytes rng (rint 64) }
          | 5 -> Reconcile.Bloom_reply { blocks = rblocks () }
          | 6 -> Reconcile.Blocks_request { hashes = rhashes () }
          | 7 -> Reconcile.Blocks_reply { blocks = rblocks () }
          | 8 ->
            Reconcile.Digest_request
              {
                upto = rint 1000;
                intervals = List.init (rint 4) (fun _ -> rinterval ());
              }
          | 9 ->
            Reconcile.Digest_reply
              {
                splits = List.init (rint 3) (fun _ -> rinterval ());
                leaves = List.init (rint 3) (fun _ -> rleaf ());
              }
          | _ ->
            Reconcile.Trace_context
              {
                trace = Vegvisir_crypto.Rng.bytes rng (rint 24);
                span = Vegvisir_crypto.Rng.bytes rng (rint 24);
              }
        in
        let b = Buffer.create 64 in
        Reconcile.encode_message b msg;
        let bytes = Buffer.contents b in
        let ok_roundtrip =
          match Wire.decode_string Reconcile.decode_message bytes with
          | None -> false
          | Some m' ->
            let b2 = Buffer.create 64 in
            Reconcile.encode_message b2 m';
            Reconcile.message_equal msg m'
            && String.equal bytes (Buffer.contents b2)
            && Reconcile.message_size msg = String.length bytes
        in
        let ok_trunc = ref true in
        for i = 0 to String.length bytes - 1 do
          match Wire.decode_string Reconcile.decode_message (String.sub bytes 0 i) with
          | None | Some _ -> ()
          | exception _ -> ok_trunc := false
        done;
        let garbled = Bytes.of_string bytes in
        if Bytes.length garbled > 0 then Bytes.set garbled 0 (Char.chr (rint 256));
        let ok_garble =
          match
            Wire.decode_string Reconcile.decode_message (Bytes.to_string garbled)
          with
          | None | Some _ -> true
          | exception _ -> false
        in
        ok_roundtrip && !ok_trunc && ok_garble);
  ]

let () =
  Alcotest.run "core"
    [
      ("hash_id", [ Alcotest.test_case "basics" `Quick hash_id_basics ]);
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick wire_roundtrip;
          Alcotest.test_case "malformed" `Quick wire_malformed;
        ] );
      ( "signer",
        [
          Alcotest.test_case "schemes" `Quick signer_schemes;
          Alcotest.test_case "certificates" `Quick certificate_checks;
        ] );
      ( "block",
        [
          Alcotest.test_case "transaction roundtrip" `Quick transaction_roundtrip;
          Alcotest.test_case "roundtrip + tamper" `Quick block_roundtrip_and_tamper;
          Alcotest.test_case "canonical parents" `Quick block_canonical_parents;
        ] );
      ( "dag",
        [
          Alcotest.test_case "basics" `Quick dag_basics;
          Alcotest.test_case "diamond queries" `Quick dag_diamond_queries;
          Alcotest.test_case "level frontier" `Quick dag_level_frontier;
          Alcotest.test_case "topo order" `Quick dag_topo_order;
          Alcotest.test_case "prune" `Quick dag_prune;
          Alcotest.test_case "incremental indices" `Quick dag_incremental_indices;
        ] );
      ( "validation",
        [
          Alcotest.test_case "genesis" `Quick validation_genesis;
          Alcotest.test_case "four checks" `Quick validation_four_checks;
          Alcotest.test_case "revocation causality" `Quick validation_revocation_causality;
        ] );
      ("membership", [ Alcotest.test_case "2P semantics" `Quick membership_two_phase ]);
      ( "csm",
        [
          Alcotest.test_case "genesis + txs" `Quick csm_applies_genesis_and_txs;
          Alcotest.test_case "invalid txs rejected" `Quick csm_rejects_invalid_txs;
          Alcotest.test_case "membership rules" `Quick csm_membership_rules;
          Alcotest.test_case "order determinism" `Quick csm_deterministic_across_orders;
        ] );
      ( "witness",
        [
          Alcotest.test_case "counting" `Quick witness_counting;
          Alcotest.test_case "index monotone under prune" `Quick
            witness_index_monotone_under_prune;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "message roundtrip" `Quick reconcile_message_roundtrip;
          Alcotest.test_case "trace identity" `Quick reconcile_trace_identity;
          Alcotest.test_case "modes converge" `Quick reconcile_modes_converge;
          Alcotest.test_case "escalation depth" `Quick reconcile_escalation_depth;
          Alcotest.test_case "respond ignores replies" `Quick reconcile_respond_ignores_replies;
          Alcotest.test_case "block requests + bloom responder" `Quick reconcile_block_requests;
          Alcotest.test_case "digest extension responder" `Quick reconcile_digest_extension;
          Alcotest.test_case "foreign replies ignored" `Quick reconcile_foreign_reply_ignored;
        ] );
      ( "support",
        [
          Alcotest.test_case "chain rules" `Quick support_chain_rules;
          Alcotest.test_case "order violation" `Quick support_detects_order_violation;
          Alcotest.test_case "superpeer" `Quick offload_superpeer;
          Alcotest.test_case "serve_below" `Quick offload_serve_below;
        ] );
      ( "node",
        [
          Alcotest.test_case "buffering" `Quick node_buffering_out_of_order;
          Alcotest.test_case "pending pool" `Quick pending_pool_basics;
          Alcotest.test_case "pending advertised eviction" `Quick
            pending_pool_advertised_eviction;
          Alcotest.test_case "pending eviction" `Quick node_pending_eviction;
          Alcotest.test_case "frontier reining" `Quick node_append_reins_frontier;
          Alcotest.test_case "no genesis" `Quick node_no_genesis;
          Alcotest.test_case "signer exhaustion" `Quick node_signer_exhaustion;
          Alcotest.test_case "prune_to" `Quick node_prune_to;
          Alcotest.test_case "key rotation" `Quick node_key_rotation;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "dag roundtrip" `Quick dag_persistence_roundtrip;
          Alcotest.test_case "csm rebuild" `Quick csm_rebuild_equals_incremental;
          Alcotest.test_case "decoder fuzz" `Quick decoder_fuzz;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests);
    ]
