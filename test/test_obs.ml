(* Unit tests for the observability layer: event codec, sinks, registry,
   causal traces, and the determinism guarantee (same seed => byte-
   identical JSONL trace output from a full fleet run). *)

open Vegvisir_obs
module V = Vegvisir
module Net = Vegvisir_net

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_f = Alcotest.(check (float 1e-9))

let h s = V.Hash_id.digest s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Event codec                                                          *)

(* One sample per constructor, covering every phase and reason payload. *)
let all_events =
  let b = h "block-a" in
  Event.
    [
      Block { node = "0"; phase = Created; block = b; peer = None };
      Block { node = "0"; phase = Sent; block = b; peer = Some "1" };
      Block { node = "1"; phase = Received; block = b; peer = Some "0" };
      Block { node = "1"; phase = Validated; block = b; peer = None };
      Block { node = "1"; phase = Delivered; block = b; peer = None };
      Block { node = "1"; phase = Witnessed; block = b; peer = Some "ab12cd34" };
      Block_dropped { node = "2"; block = h "block-b" };
      Net_sent { src = "0"; dst = "1"; bytes = 512 };
      Net_delivered { src = "0"; dst = "1"; bytes = 512 };
      Net_dropped { src = "0"; dst = "1"; bytes = 9; reason = Link_loss };
      Net_dropped { src = "1"; dst = "0"; bytes = 9; reason = Disconnected };
      Net_dropped { src = "1"; dst = "2"; bytes = 9; reason = Asleep };
      Session_started { node = "0"; peer = "1"; generation = 3 };
      Session_completed
        { node = "0"; peer = "1"; generation = 3; blocks = 7; duration_ms = 12.5 };
      Session_aborted { node = "0"; peer = "1"; generation = 4; reason = Stalled };
      Session_aborted { node = "1"; peer = "0"; generation = 5; reason = Timed_out };
      Request_resent { node = "0"; peer = "1"; generation = 4; attempt = 2 };
      Leader_elected { node = "2"; term = 6 };
      Block_archived { node = "2"; block = h "block-a"; index = 41 };
      Store_loaded { node = "ab12cd34"; blocks = 12 };
      Store_saved { node = "ab12cd34"; blocks = 13 };
      Sync_started { node = "ab12cd34"; peer = "remote" };
      Sync_completed { node = "ab12cd34"; peer = "remote"; pulled = 2; served = 1 };
      Block_redundant { node = "1"; block = b; peer = Some "0" };
      Block_redundant { node = "2"; block = b; peer = None };
      Partition_changed { groups = Some [ 0; 0; 1; 1 ] };
      Partition_changed { groups = None };
      Recovery_completed { node = "ab12cd34"; peer = "remote"; blocks = 4 };
      Span
        {
          node = "0";
          trace = "aabbccddeeff0011";
          span = "1122334455667788";
          parent = None;
          name = "session.announce";
          dur_ms = 0.;
        };
      Span
        {
          node = "1";
          trace = "aabbccddeeff0011";
          span = "8877665544332211";
          parent = Some "1122334455667788";
          name = "session.exchange";
          dur_ms = 12.5;
        };
    ]

let jsonl_roundtrip () =
  List.iteri
    (fun i ev ->
      let ts = 0.5 +. (float_of_int i *. 13.25) in
      let line = Event.to_json ~ts ev in
      match Event.of_json line with
      | None -> Alcotest.failf "event %d did not decode: %s" i line
      | Some (ts', ev') ->
        check_f (Printf.sprintf "ts %d" i) ts ts';
        check_b (Printf.sprintf "event %d round-trips" i) true
          (Event.equal ev ev'))
    all_events

let jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      check_b line true (Event.of_json line = None))
    [ ""; "{}"; "not json"; {|{"t":1.0,"sub":"block","ev":"nope"}|} ]

let json_float_exact () =
  List.iter
    (fun f ->
      check_b
        (Printf.sprintf "%h survives" f)
        true
        (Float.equal (float_of_string (Event.json_float f)) f))
    [ 0.; 1.; -2.; 0.1; 1. /. 3.; 1e17; 1.000000000000004; 12345.6789 ]

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)

let ring_keeps_most_recent () =
  let ring = Sink.Ring.create ~capacity:2 in
  let s = Sink.Ring.sink ring in
  List.iteri
    (fun i ev -> Sink.emit s ~ts:(float_of_int i) ev)
    [
      Event.Net_sent { src = "0"; dst = "1"; bytes = 1 };
      Event.Net_sent { src = "0"; dst = "1"; bytes = 2 };
      Event.Net_sent { src = "0"; dst = "1"; bytes = 3 };
    ];
  check_i "recorded" 3 (Sink.Ring.recorded ring);
  check_i "dropped" 1 (Sink.Ring.dropped ring);
  match Sink.Ring.events ring with
  | [ (t1, Event.Net_sent { bytes = b1; _ }); (t2, Event.Net_sent { bytes = b2; _ }) ]
    ->
    check_f "oldest first" 1. t1;
    check_f "newest last" 2. t2;
    check_i "payload 1" 2 b1;
    check_i "payload 2" 3 b2
  | _ -> Alcotest.fail "expected the two most recent events"

let jsonl_sink_writes_lines () =
  let buf = Buffer.create 64 in
  let s = Sink.jsonl (Buffer.add_string buf) in
  Sink.emit s ~ts:1. (Event.Net_sent { src = "0"; dst = "1"; bytes = 7 });
  Sink.emit s ~ts:2. (Event.Leader_elected { node = "3"; term = 1 });
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  check_i "two lines + trailing" 3 (List.length lines);
  let decoded = List.filter_map Event.of_json lines in
  check_i "both decode" 2 (List.length decoded)

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)

let registry_counters () =
  let r = Registry.create () in
  let a = Registry.counter r ~node:"0" "sess" in
  let b = Registry.counter r ~node:"1" "sess" in
  Registry.incr a;
  Registry.incr a;
  Registry.add b 5;
  check_i "read a" 2 (Registry.read r ~node:"0" "sess");
  check_i "read b" 5 (Registry.read r ~node:"1" "sess");
  check_i "read absent" 0 (Registry.read r "sess");
  check_i "total" 7 (Registry.total r "sess");
  check_b "get-or-create aliases" true
    (Registry.counter_value (Registry.counter r ~node:"0" "sess") = 2);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Registry: sess{node=0} already registered with another kind (wanted \
        gauge)")
    (fun () -> ignore (Registry.gauge r ~node:"0" "sess"))

let histogram_boundaries () =
  let r = Registry.create () in
  let hst = Registry.histogram r ~buckets:[ 10.; 20. ] "lat" in
  (* A bucket's bound is inclusive: v <= le. *)
  List.iter (Registry.observe hst) [ 9.9; 10.; 10.1; 20.; 20.000001; 1000. ];
  (match Registry.snapshot r with
  | [ (("lat", ""), Registry.Histogram { buckets; overflow; sum = _; observations }) ]
    ->
    Alcotest.(check (list (pair (float 1e-9) int)))
      "bucket counts"
      [ (10., 2); (20., 2) ]
      buckets;
    check_i "overflow" 2 overflow;
    check_i "observations" 6 observations
  | _ -> Alcotest.fail "expected one histogram row");
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Registry.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Registry.histogram r ~buckets:[ 5.; 5. ] "bad"))

let snapshot_order_and_aggregate () =
  let r = Registry.create () in
  (* Registration order is scrambled on purpose: snapshots sort by
     (name, node), so output order must not depend on it. *)
  Registry.add (Registry.counter r ~node:"1" "b") 3;
  Registry.add (Registry.counter r ~node:"0" "b") 2;
  Registry.add (Registry.counter r "a") 1;
  let keys = List.map fst (Registry.snapshot r) in
  Alcotest.(check (list (pair string string)))
    "canonical order"
    [ ("a", ""); ("b", "0"); ("b", "1") ]
    keys;
  (match Registry.aggregate (Registry.snapshot r) with
  | [ (("a", ""), Registry.Counter 1); (("b", ""), Registry.Counter 5) ] -> ()
  | _ -> Alcotest.fail "aggregate should sum node labels");
  let text = Registry.render_text (Registry.snapshot r) in
  check_s "render_text" "a 1\nb{node=0} 2\nb{node=1} 3\n" text

(* ------------------------------------------------------------------ *)
(* Trace queries                                                        *)

let trace_queries () =
  let tr = Trace.create () in
  let b = h "traced" in
  let ev phase peer = Event.Block { node = "1"; phase; block = b; peer } in
  Trace.record tr ~ts:0. (Event.Block { node = "0"; phase = Event.Created; block = b; peer = None });
  Trace.record tr ~ts:1. (Event.Block { node = "0"; phase = Event.Sent; block = b; peer = Some "1" });
  Trace.record tr ~ts:2. (ev Event.Received (Some "0"));
  Trace.record tr ~ts:2. (ev Event.Validated None);
  Trace.record tr ~ts:3. (ev Event.Delivered None);
  Trace.record tr ~ts:4. (ev Event.Witnessed (Some "w1"));
  Trace.record tr ~ts:9. (ev Event.Witnessed (Some "w2"));
  (* Non-block events must be ignored by the collector. *)
  Trace.record tr ~ts:5. (Event.Net_sent { src = "0"; dst = "1"; bytes = 1 });
  check_i "one block" 1 (List.length (Trace.blocks tr));
  check_i "span length" 7 (List.length (Trace.span tr b));
  check_f "propagation" 3. (Option.get (Trace.propagation_latency tr b));
  check_f "witness q1" 4. (Option.get (Trace.witness_latency tr b));
  check_f "witness q2" 9. (Option.get (Trace.witness_latency ~quorum:2 tr b));
  check_b "witness q3 unmet" true (Trace.witness_latency ~quorum:3 tr b = None);
  check_i "fan-in" 1 (Trace.fan_in tr b);
  let hex = V.Hash_id.to_hex b in
  check_b "find by prefix" true
    (Trace.find tr (String.sub hex 0 6) = [ b ]);
  check_b "find miss" true (Trace.find tr "zz" = []);
  let rendered = Trace.render tr b in
  check_b "render mentions created" true (contains rendered "created")

(* ------------------------------------------------------------------ *)
(* Spans: deterministic ids, event folding, collector, exporters        *)

let span_identity_deterministic () =
  let b = h "span-block" in
  let trace = Span.trace_of_block b in
  check_i "trace id is 16 hex chars" 16 (String.length trace);
  check_s "trace = hash prefix" (String.sub (V.Hash_id.to_hex b) 0 16) trace;
  check_s "root stable" (Span.root_of_trace trace) (Span.root_of_trace trace);
  check_s "derive stable"
    (Span.derive ~trace ~node:"0" ~name:"block.received")
    (Span.derive ~trace ~node:"0" ~name:"block.received");
  check_b "derive keyed by node" true
    (not
       (String.equal
          (Span.derive ~trace ~node:"0" ~name:"block.received")
          (Span.derive ~trace ~node:"1" ~name:"block.received")))

let span_of_event_fold () =
  let b = h "fold-block" in
  let trace = Span.trace_of_block b in
  let root = Span.root_of_trace trace in
  (match
     Span.of_event ~ts:5.
       (Event.Block { node = "0"; phase = Event.Created; block = b; peer = None })
   with
  | Some s ->
    check_s "created trace" trace s.Span.trace;
    check_s "created is the root" root s.Span.span;
    check_b "root has no parent" true (s.Span.parent = None);
    check_s "created name" "block.created" s.Span.name;
    check_f "instant" 0. s.Span.dur_ms
  | None -> Alcotest.fail "Created must fold to a span");
  (match
     Span.of_event ~ts:9.
       (Event.Block
          { node = "1"; phase = Event.Received; block = b; peer = Some "0" })
   with
  | Some s ->
    check_s "child trace" trace s.Span.trace;
    check_s "child parent is the root" root (Option.get s.Span.parent);
    check_s "child id derived"
      (Span.derive ~trace ~node:"1" ~name:"block.received")
      s.Span.span
  | None -> Alcotest.fail "Received must fold to a span");
  (* An explicit Span event passes its identity through; ts stamps the
     end, so the start backs off by the duration. *)
  (match
     Span.of_event ~ts:20.
       (Event.Span
          {
            node = "0";
            trace;
            span = "0011223344556677";
            parent = Some root;
            name = "session.exchange";
            dur_ms = 12.;
          })
   with
  | Some s ->
    check_f "start = ts - dur" 8. s.Span.start_ms;
    check_f "duration carried" 12. s.Span.dur_ms
  | None -> Alcotest.fail "Span event must fold to a span");
  check_b "non-lifecycle events fold to None" true
    (Span.of_event ~ts:1. (Event.Net_sent { src = "0"; dst = "1"; bytes = 1 })
     = None
    && Span.of_event ~ts:1.
         (Event.Session_started { node = "0"; peer = "1"; generation = 1 })
       = None)

(* Property: a capacity-bounded collector fed event by event always
   holds exactly the last [capacity] spans of the of_events oracle. *)
let span_collector_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"span collector = of_events oracle suffix"
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 0 60) (pair (int_bound 3) (int_bound 6))))
    (fun (cap, ops) ->
      let blocks = Array.init 4 (fun i -> h (Printf.sprintf "sp-%d" i)) in
      let ev_of (b, k) =
        let block = blocks.(b) in
        let trace = Span.trace_of_block block in
        match k with
        | 0 ->
          Event.Block { node = "0"; phase = Event.Created; block; peer = None }
        | 1 ->
          Event.Block
            { node = "1"; phase = Event.Received; block; peer = Some "0" }
        | 2 ->
          Event.Block
            { node = "1"; phase = Event.Delivered; block; peer = None }
        | 3 -> Event.Net_sent { src = "0"; dst = "1"; bytes = 1 }
        | 4 -> Event.Session_started { node = "0"; peer = "1"; generation = b }
        | 5 ->
          Event.Span
            {
              node = "0";
              trace;
              span = Span.derive ~trace ~node:"0" ~name:"session.exchange";
              parent = Some (Span.root_of_trace trace);
              name = "session.exchange";
              dur_ms = 3.5;
            }
        | _ ->
          Event.Block
            { node = "0"; phase = Event.Witnessed; block; peer = Some "w" }
      in
      let events = List.mapi (fun i op -> (float_of_int i, ev_of op)) ops in
      let oracle = Span.of_events events in
      let skip = List.length oracle - min cap (List.length oracle) in
      let expected = List.filteri (fun i _ -> i >= skip) oracle in
      let c = Span.Collector.create ~capacity:cap in
      List.iter (fun (ts, ev) -> Span.Collector.observe c ~ts ev) events;
      let got = Span.Collector.spans c in
      Span.Collector.collected c = List.length oracle
      && Span.Collector.dropped c = skip
      && List.length got = List.length expected
      && List.for_all2 Span.equal got expected)

let span_render_json_shape () =
  let b = h "render-block" in
  let spans =
    Span.of_events
      [
        (1., Event.Block { node = "0"; phase = Event.Created; block = b; peer = None });
        (2., Event.Block { node = "1"; phase = Event.Received; block = b; peer = Some "0" });
      ]
  in
  let body = Span.render_json spans in
  check_s "deterministic" body (Span.render_json spans);
  check_b "array shape" true
    (String.length body > 2
    && Char.equal body.[0] '['
    && String.equal (String.sub body (String.length body - 3) 3) "\n]\n");
  check_b "carries the trace id" true (contains body (Span.trace_of_block b));
  check_b "parent only on children" true (contains body {|"parent":|});
  check_s "empty list still valid" "[\n]\n" (Span.render_json [])

let span_chrome_export () =
  let b = h "chrome-block" in
  let trace = Span.trace_of_block b in
  let spans =
    Span.of_events
      [
        (1., Event.Block { node = "0"; phase = Event.Created; block = b; peer = None });
        (2., Event.Block { node = "1"; phase = Event.Received; block = b; peer = Some "0" });
        ( 5.,
          Event.Span
            {
              node = "0";
              trace;
              span = Span.derive ~trace ~node:"0" ~name:"session.exchange";
              parent = Some (Span.root_of_trace trace);
              name = "session.exchange";
              dur_ms = 4.;
            } );
      ]
  in
  check_i "three spans" 3 (List.length spans);
  let doc = Span.chrome_trace spans in
  check_s "deterministic" doc (Span.chrome_trace spans);
  check_b "traceEvents envelope" true
    (String.length doc > 16 && String.equal (String.sub doc 0 16) {|{"traceEvents":[|});
  check_b "process metadata rows" true
    (contains doc {|"name":"process_name"|}
    && contains doc {|"args":{"name":"node 0"}|}
    && contains doc {|"args":{"name":"node 1"}|});
  check_b "instant events" true (contains doc {|"ph":"i"|} && contains doc {|"s":"p"|});
  check_b "complete event with µs duration" true
    (contains doc {|"ph":"X"|} && contains doc {|"dur":4000.0|});
  (* Cheap well-formedness proxy: every brace/bracket balances (no
     braces ever appear inside our string payloads). *)
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      (match c with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | _ -> ());
      if !depth < 0 then ok := false)
    doc;
  check_b "balanced json" true (!ok && !depth = 0)

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)

let flight_dump_format () =
  let f = Flight.create ~capacity:2 () in
  List.iteri
    (fun i ev -> Flight.record f ~ts:(float_of_int i) ev)
    [
      Event.Net_sent { src = "0"; dst = "1"; bytes = 1 };
      Event.Leader_elected { node = "2"; term = 4 };
      Event.Store_saved { node = "ab"; blocks = 9 };
    ];
  check_i "recorded" 3 (Flight.recorded f);
  check_i "dropped" 1 (Flight.dropped f);
  let reg = Registry.create () in
  Registry.add (Registry.counter reg ~node:"0" "sess") 2;
  let dump = Flight.dump f ~snapshot:(Registry.snapshot reg) in
  match String.split_on_char '\n' dump with
  | [ header; e1; e2; registry; "" ] ->
    check_s "header"
      {|{"flight":{"capacity":2,"recorded":3,"dropped":1}}|} header;
    (* The body lines are plain journal lines: standard tooling decodes
       them unchanged, oldest first. *)
    (match List.filter_map Event.of_json [ e1; e2 ] with
    | [ (t1, Event.Leader_elected _); (t2, Event.Store_saved _) ] ->
      check_f "oldest retained first" 1. t1;
      check_f "newest last" 2. t2
    | _ -> Alcotest.fail "flight body lines must decode as journal events");
    check_b "registry snapshot on one line" true
      (String.length registry > 12
      && String.equal (String.sub registry 0 12) {|{"registry":|}
      && contains registry "sess")
  | _ -> Alcotest.failf "unexpected dump shape: %s" dump

(* ------------------------------------------------------------------ *)
(* Fleet integration: stitching and byte-level determinism              *)

let run_fleet ?jsonl_into ?attach ~seed until_ms =
  let obs = Context.create () in
  (match jsonl_into with
  | Some buf -> Context.attach obs (Sink.jsonl (Buffer.add_string buf))
  | None -> ());
  (match attach with Some s -> Context.attach obs s | None -> ());
  let fleet = Net.Scenario.build ~seed ~obs ~topo:(Net.Topology.clique ~n:2) () in
  (* Each peer authors one (empty, witnessing) block so there is block
     traffic to trace; [] transactions keeps the fixture self-contained. *)
  (match (Net.Gossip.append fleet.Net.Scenario.gossip 0 [],
          Net.Gossip.append fleet.Net.Scenario.gossip 1 []) with
  | Ok _, Ok _ -> ()
  | (Error _, _ | _, Error _) -> Alcotest.fail "fixture append failed");
  Net.Scenario.run fleet ~until_ms;
  fleet

let two_node_stitching () =
  let fleet = run_fleet ~seed:404L 30_000. in
  let tr = Context.trace fleet.Net.Scenario.obs in
  (* Find a block that one node created and the other delivered. *)
  let stitched =
    List.filter
      (fun b ->
        let entries = Trace.span tr b in
        let phase_node p =
          List.filter_map
            (fun (e : Trace.entry) ->
              if Event.block_phase_equal e.Trace.phase p then Some e.Trace.node
              else None)
            entries
        in
        match (phase_node Event.Created, phase_node Event.Delivered) with
        | [ creator ], delivs ->
          List.exists (fun n -> not (String.equal n creator)) delivs
        | _ -> false)
      (Trace.blocks tr)
  in
  check_b "some block crossed nodes" true (stitched <> []);
  List.iter
    (fun b ->
      match Trace.propagation_latency tr b with
      | None -> Alcotest.fail "stitched block has no propagation latency"
      | Some l -> check_b "latency positive" true (l > 0.))
    stitched;
  (* Counters derived from the same stream agree with the trace. *)
  let reg = Context.registry fleet.Net.Scenario.obs in
  check_b "delivered counter populated" true
    (Registry.total reg "block.delivered" > 0);
  check_b "sessions completed" true (Registry.total reg "session.completed" > 0)

(* With sampling on, a simulated fleet's initiators announce their trace
   context over the wire and responders stitch under it: both sides of a
   session share one trace id, and the serve span parents on the
   announced span. *)
let fleet_trace_sampling () =
  let run seed =
    let obs = Context.create () in
    let coll = Span.Collector.create ~capacity:4096 in
    Context.attach obs (Span.Collector.sink coll);
    let fleet =
      Net.Scenario.build ~seed ~obs ~trace_sample:1.0
        ~topo:(Net.Topology.clique ~n:2) ()
    in
    (match
       ( Net.Gossip.append fleet.Net.Scenario.gossip 0 [],
         Net.Gossip.append fleet.Net.Scenario.gossip 1 [] )
     with
    | Ok _, Ok _ -> ()
    | (Error _, _ | _, Error _) -> Alcotest.fail "fixture append failed");
    Net.Scenario.run fleet ~until_ms:30_000.;
    Span.Collector.spans coll
  in
  let spans = run 404L in
  let announces =
    List.filter (fun s -> String.equal s.Span.name "session.announce") spans
  in
  let serves =
    List.filter (fun s -> String.equal s.Span.name "session.serve") spans
  in
  check_b "announce spans emitted" true (announces <> []);
  check_b "serve spans emitted" true (serves <> []);
  List.iter
    (fun (sv : Span.t) ->
      match
        List.find_opt
          (fun (an : Span.t) -> String.equal an.Span.trace sv.Span.trace)
          announces
      with
      | None -> Alcotest.fail "serve span without a matching announce"
      | Some an ->
        check_b "stitch crosses nodes" true
          (not (String.equal an.Span.node sv.Span.node));
        check_s "serve parents on the announced span" an.Span.span
          (Option.get sv.Span.parent))
    serves;
  (* Ids are hash-derived, never random: the same seed reproduces the
     span stream byte for byte. *)
  check_s "same seed, identical span ids" (Span.render_json spans)
    (Span.render_json (run 404L));
  check_b "sampling off emits no session spans" true
    (let obs = Context.create () in
     let coll = Span.Collector.create ~capacity:4096 in
     Context.attach obs (Span.Collector.sink coll);
     let fleet =
       Net.Scenario.build ~seed:404L ~obs ~topo:(Net.Topology.clique ~n:2) ()
     in
     Net.Scenario.run fleet ~until_ms:10_000.;
     List.for_all
       (fun (s : Span.t) ->
         not
           (String.equal s.Span.name "session.announce"
           || String.equal s.Span.name "session.serve"))
       (Span.Collector.spans coll))

let same_seed_identical_trace () =
  let run () =
    let buf = Buffer.create 4096 in
    ignore (run_fleet ~jsonl_into:buf ~seed:77L 20_000.);
    Buffer.contents buf
  in
  let a = run () and b = run () in
  check_b "trace non-empty" true (String.length a > 0);
  check_s "byte-identical JSONL" a b;
  let c =
    let buf = Buffer.create 4096 in
    ignore (run_fleet ~jsonl_into:buf ~seed:78L 20_000.);
    Buffer.contents buf
  in
  check_b "different seed differs" true (not (String.equal a c))

(* ------------------------------------------------------------------ *)
(* Monitor: streaming derived health metrics                            *)

let deliver ~node b = Event.Block { node; phase = Event.Delivered; block = b; peer = None }
let create_ev ~node b = Event.Block { node; phase = Event.Created; block = b; peer = None }

let monitor_convergence_and_lag () =
  let m = Monitor.create ~nodes:[ "0"; "1" ] () in
  let b = h "conv-a" in
  check_b "empty fleet is converged" true (Monitor.converged m);
  Monitor.observe m ~ts:10. (create_ev ~node:"0" b);
  check_b "one holder of two" false (Monitor.converged m);
  check_i "lagging" 1 (Monitor.lagging m);
  Monitor.mark m ~ts:10.;
  check_i "mark pending" 1 (Monitor.pending_marks m);
  Monitor.observe m ~ts:250. (deliver ~node:"1" b);
  check_b "all hold" true (Monitor.converged m);
  check_f "lag resolved" 240. (Option.get (Monitor.last_lag m));
  check_i "no pending" 0 (Monitor.pending_marks m);
  check_f "converged_at" 250. (Option.get (Monitor.converged_at m));
  (* A mark on an already-converged fleet resolves immediately to 0. *)
  Monitor.mark m ~ts:300.;
  check_f "converged mark is zero lag" 0. (Option.get (Monitor.last_lag m));
  check_i "two lags total" 2 (List.length (Monitor.lags m))

let monitor_partition_heal_automark () =
  let m = Monitor.create ~nodes:[ "0"; "1" ] () in
  let b = h "heal-a" in
  Monitor.observe m ~ts:5. (create_ev ~node:"0" b);
  Monitor.observe m ~ts:10. (Event.Partition_changed { groups = Some [ 0; 1 ] });
  check_b "partition live" true (Monitor.partition m = Some [ 0; 1 ]);
  check_i "one change" 1 (Monitor.partition_changes m);
  (* Split fleet: each node is its own group, so divergence is per side. *)
  Alcotest.(check (list (pair int int)))
    "split divergence" [ (0, 0); (1, 0) ] (Monitor.divergence m);
  Monitor.observe m ~ts:100. (Event.Partition_changed { groups = None });
  check_b "healed" true (Monitor.partition m = None);
  check_i "heal auto-marks" 1 (Monitor.pending_marks m);
  Alcotest.(check (list (pair int int)))
    "whole-fleet divergence" [ (0, 1) ] (Monitor.divergence m);
  Monitor.observe m ~ts:150. (deliver ~node:"1" b);
  check_f "heal-to-convergence lag" 50. (Option.get (Monitor.last_lag m))

let monitor_gossip_and_witness () =
  let m = Monitor.create ~nodes:[ "0"; "1"; "2" ] () in
  check_i "majority quorum" 2 (Monitor.quorum m);
  let b = h "wit-a" in
  Monitor.observe m ~ts:0. (create_ev ~node:"0" b);
  Monitor.observe m ~ts:20. (deliver ~node:"1" b);
  Monitor.observe m ~ts:25.
    (Event.Block_redundant { node = "1"; block = b; peer = Some "0" });
  Monitor.observe m ~ts:30. (deliver ~node:"2" b);
  check_i "useful" 2 (Monitor.gossip_useful m);
  check_i "redundant" 1 (Monitor.gossip_redundant m);
  let witness ~ts creator =
    Monitor.observe m ~ts
      (Event.Block { node = "0"; phase = Event.Witnessed; block = b; peer = Some creator })
  in
  witness ~ts:40. "w1";
  witness ~ts:50. "w1";
  (* same witness twice: not a second distinct witness *)
  check_b "quorum unmet" true (Monitor.quorum_latencies m = []);
  witness ~ts:70. "w2";
  Alcotest.(check (list (float 1e-9)))
    "quorum latency" [ 70. ] (Monitor.quorum_latencies m)

let monitor_divergence_sampling () =
  let m = Monitor.create ~every:100. ~nodes:[ "0"; "1" ] () in
  let b0 = h "s-0" and b1 = h "s-1" in
  Monitor.observe m ~ts:10. (create_ev ~node:"0" b0);
  check_b "no boundary crossed yet" true (Monitor.samples m = []);
  Monitor.observe m ~ts:150. (create_ev ~node:"0" b1);
  Monitor.observe m ~ts:250. (deliver ~node:"1" b0);
  Monitor.observe m ~ts:460. (deliver ~node:"1" b1);
  match Monitor.samples m with
  | [ s1; s2; s3 ] ->
    (* Each sample is stamped with the last crossed tick boundary and
       carries the divergence *before* the event that crossed it. *)
    check_f "tick 100" 100. s1.Monitor.ts;
    Alcotest.(check (list (pair int int))) "one lagging" [ (0, 1) ] s1.Monitor.groups;
    check_f "tick 200" 200. s2.Monitor.ts;
    Alcotest.(check (list (pair int int))) "two lagging" [ (0, 2) ] s2.Monitor.groups;
    check_f "tick 400 (skips empty gaps)" 400. s3.Monitor.ts;
    Alcotest.(check (list (pair int int))) "one left" [ (0, 1) ] s3.Monitor.groups
  | l -> Alcotest.failf "expected 3 samples, got %d" (List.length l)

(* Property: the monitor's streaming convergence lag equals an oracle
   that recomputes holdings sets from scratch at every step. *)
let monitor_lag_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"monitor lag = oracle recomputation"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 40) (pair (int_bound 4) (int_bound 1)))
        small_nat)
    (fun (ops, mark_at) ->
      QCheck.assume (ops <> []);
      let blocks = Array.init 5 (fun i -> h (Printf.sprintf "q-%d" i)) in
      let ts_of i = float_of_int (i + 1) *. 10. in
      let mark_at = mark_at mod List.length ops in
      let mark_ts = ts_of mark_at in
      (* Oracle: replay prefixes with plain per-node block sets. *)
      let module S = Set.Make (String) in
      let held = [| S.empty; S.empty |] in
      let converged_after = Array.make (List.length ops) true in
      List.iteri
        (fun i (b, node) ->
          held.(node) <- S.add (V.Hash_id.to_hex blocks.(b)) held.(node);
          converged_after.(i) <- S.equal held.(0) held.(1))
        ops;
      let oracle =
        if converged_after.(mark_at) then Some 0.
        else begin
          let rec find j =
            if j >= Array.length converged_after then None
            else if converged_after.(j) then Some (ts_of j -. mark_ts)
            else find (j + 1)
          in
          find (mark_at + 1)
        end
      in
      let m = Monitor.create ~nodes:[ "0"; "1" ] () in
      List.iteri
        (fun i (b, node) ->
          Monitor.observe m ~ts:(ts_of i)
            (deliver ~node:(string_of_int node) blocks.(b));
          if i = mark_at then Monitor.mark m ~ts:mark_ts)
        ops;
      match (oracle, Monitor.last_lag m) with
      | None, None -> Monitor.pending_marks m = 1
      | Some a, Some b -> Float.equal a b && Monitor.pending_marks m = 0
      | None, Some _ | Some _, None -> false)

(* ------------------------------------------------------------------ *)
(* Health report + Prometheus exposition                                *)

let run_health ~seed =
  let monitor = Monitor.create ~every:1_000. ~nodes:[ "0"; "1" ] () in
  let fleet = run_fleet ~attach:(Monitor.sink monitor) ~seed 30_000. in
  (fleet, monitor)

let health_report_byte_stable () =
  let render seed =
    let _fleet, monitor = run_health ~seed in
    Health.report monitor
  in
  let a = render 909L and b = render 909L in
  check_b "report non-empty" true (String.length a > 0);
  check_s "same seed, identical report" a b;
  check_b "mentions gossip" true (contains a "gossip ");
  check_b "mentions witness" true (contains a "witness ");
  check_b "different seed differs" true (not (String.equal a (render 910L)))

let prometheus_byte_stable () =
  let render seed =
    let fleet, monitor = run_health ~seed in
    let reg = Context.registry fleet.Net.Scenario.obs in
    Health.export monitor reg;
    Registry.to_prometheus (Registry.snapshot reg)
  in
  let a = render 909L and b = render 909L in
  check_s "same seed, identical exposition" a b;
  check_b "health gauges exported" true
    (contains a "vegvisir_health_converged");
  check_b "type lines present" true (contains a "# TYPE vegvisir_")

let prometheus_rendering () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~node:"0" "gossip.blocks") 3;
  Registry.add (Registry.counter r ~node:"1" "gossip.blocks") 1;
  Registry.set (Registry.gauge r "health.converged") 1.;
  let hst = Registry.histogram r ~buckets:[ 10.; 20. ] "lat.ms" in
  List.iter (Registry.observe hst) [ 5.; 15.; 100. ];
  check_s "prometheus text"
    (String.concat "\n"
       [
         "# TYPE vegvisir_gossip_blocks counter";
         "vegvisir_gossip_blocks{node=\"0\"} 3";
         "vegvisir_gossip_blocks{node=\"1\"} 1";
         "# TYPE vegvisir_health_converged gauge";
         "vegvisir_health_converged 1.0";
         "# TYPE vegvisir_lat_ms histogram";
         "vegvisir_lat_ms_bucket{le=\"10.0\"} 1";
         "vegvisir_lat_ms_bucket{le=\"20.0\"} 2";
         "vegvisir_lat_ms_bucket{le=\"+Inf\"} 3";
         "vegvisir_lat_ms_sum 120.0";
         "vegvisir_lat_ms_count 3";
         "";
       ])
    (Registry.to_prometheus (Registry.snapshot r))

(* ------------------------------------------------------------------ *)
(* Per-peer scoreboard                                                  *)

let sb_deliver ?peer t ~ts name =
  Scoreboard.observe t ~ts
    (Event.Block { node = Scoreboard.me t; phase = Event.Delivered; block = h name; peer })

let scoreboard_divergence_lifecycle () =
  let t = Scoreboard.create ~me:"0" () in
  (* Two local blocks before peer a is ever heard from: a row-less peer
     is maximally diverged. *)
  sb_deliver t ~ts:1. "b1";
  sb_deliver t ~ts:2. "b2";
  check_i "local blocks counted" 2 (Scoreboard.local_blocks t);
  check_b "no row before contact" true (Scoreboard.row t "a" = None);
  (* A clean exchange acks everything held so far. *)
  Scoreboard.observe t ~ts:3.
    (Event.Sync_completed { node = "0"; peer = "a"; pulled = 2; served = 0 });
  let r = Option.get (Scoreboard.row t "a") in
  check_i "acked down to zero" 0 r.Scoreboard.divergence;
  check_i "exchange counted" 1 r.Scoreboard.exchanges;
  (* New blocks reopen the gap; re-delivering b1 does not (held is a set). *)
  sb_deliver t ~ts:4. "b3";
  sb_deliver t ~ts:5. "b1";
  check_i "divergence = new blocks only" 1
    (Option.get (Scoreboard.row t "a")).Scoreboard.divergence;
  (* Attribution: delivered-from-peer is useful, redundant is redundant. *)
  sb_deliver t ~ts:6. ~peer:"a" "b4";
  Scoreboard.observe t ~ts:7.
    (Event.Block_redundant { node = "0"; block = h "b1"; peer = Some "a" });
  Scoreboard.observe t ~ts:8.
    (Event.Session_completed
       { node = "0"; peer = "a"; generation = 1; blocks = 1; duration_ms = 12.5 });
  Scoreboard.observe t ~ts:9.
    (Event.Session_aborted
       { node = "0"; peer = "a"; generation = 2; reason = Event.Stalled });
  (* Another node's events never touch my scoreboard. *)
  Scoreboard.observe t ~ts:10.
    (Event.Sync_completed { node = "9"; peer = "a"; pulled = 5; served = 5 });
  let r = Option.get (Scoreboard.row t "a") in
  check_i "useful" 1 r.Scoreboard.useful;
  check_i "redundant" 1 r.Scoreboard.redundant;
  check_i "failures" 1 r.Scoreboard.failures;
  check_i "foreign events ignored" 1 r.Scoreboard.exchanges;
  Alcotest.(check (list (float 1e-9))) "latencies" [ 12.5 ] r.Scoreboard.latencies;
  check_f "last contact advances" 9. (Option.get r.Scoreboard.last_contact)

let scoreboard_priority_order () =
  let t = Scoreboard.create ~me:"0" () in
  sb_deliver t ~ts:1. "b1";
  sb_deliver t ~ts:2. "b2";
  (* a: fully acked at ts 3 (divergence 2 after b3/b4 land).
     b: fully acked at ts 6 (divergence 0). never-seen c and d stay
     maximally diverged (3). *)
  Scoreboard.observe t ~ts:3.
    (Event.Sync_completed { node = "0"; peer = "a"; pulled = 0; served = 0 });
  sb_deliver t ~ts:4. "b3";
  Scoreboard.observe t ~ts:6.
    (Event.Sync_completed { node = "0"; peer = "b"; pulled = 0; served = 0 });
  Alcotest.(check (list string))
    "diverged first, then label ties"
    [ "c"; "d"; "a"; "b" ]
    (Scoreboard.priority t [ "b"; "d"; "a"; "c" ]);
  (* Contact breaks divergence ties: a touched later than b after both
     fully acked. *)
  Scoreboard.observe t ~ts:7.
    (Event.Sync_completed { node = "0"; peer = "a"; pulled = 0; served = 0 });
  Alcotest.(check (list string))
    "longest-unseen first on equal divergence"
    [ "b"; "a" ]
    (Scoreboard.priority t [ "a"; "b" ]);
  check_b "pure: reordering candidates only permutes" true
    (Scoreboard.priority t [ "b"; "a" ] = Scoreboard.priority t [ "a"; "b" ])

let scoreboard_renderings_stable () =
  let build () =
    let t = Scoreboard.create ~me:"0" () in
    sb_deliver t ~ts:1. "b1";
    Scoreboard.observe t ~ts:2.
      (Event.Sync_completed { node = "0"; peer = "p"; pulled = 1; served = 0 });
    Scoreboard.observe t ~ts:3.
      (Event.Session_completed
         { node = "0"; peer = "p"; generation = 1; blocks = 1; duration_ms = 4.25 });
    sb_deliver t ~ts:4. "b2";
    t
  in
  let a = build () and b = build () in
  check_s "report byte-stable" (Scoreboard.report a) (Scoreboard.report b);
  check_s "json byte-stable" (Scoreboard.to_json a) (Scoreboard.to_json b);
  check_b "report shows divergence" true
    (contains (Scoreboard.report a) "peer p divergence=1");
  check_b "json rows grep-able" true
    (contains (Scoreboard.to_json a) {|{"peer":"p","divergence":1|});
  check_b "json carries latency" true
    (contains (Scoreboard.to_json a) {|"latency_ms":{"count":1,"mean":4.25|})

let scoreboard_export_prometheus () =
  let t = Scoreboard.create ~me:"0" () in
  sb_deliver t ~ts:1. "b1";
  Scoreboard.observe t ~ts:2.
    (Event.Session_completed
       { node = "0"; peer = "p"; generation = 1; blocks = 1; duration_ms = 3. });
  let reg = Registry.create () in
  Scoreboard.export t reg;
  let text = Registry.to_prometheus (Registry.snapshot reg) in
  check_b "divergence gauge" true
    (contains text "vegvisir_peer_divergence{node=\"p\"} 1.0");
  check_b "latency histogram" true
    (contains text "vegvisir_peer_exchange_ms_count{node=\"p\"} 1")

(* ------------------------------------------------------------------ *)
(* Metrics satellite: nearest-rank percentile fix + merge               *)

let metrics_percentile_nearest_rank () =
  let s = Net.Metrics.series "p" in
  for i = 1 to 20 do
    Net.Metrics.record s ~t:(float_of_int i) (float_of_int i)
  done;
  (* 0.95 *. 20. = 19.000000000000004: ceil must not bump the rank. *)
  check_f "p95 of 1..20" 19. (Net.Metrics.percentile s 0.95);
  check_f "p100" 20. (Net.Metrics.percentile s 1.0);
  check_f "p0 clamps to first" 1. (Net.Metrics.percentile s 0.0);
  check_f "median" 10. (Net.Metrics.percentile s 0.5);
  check_f "empty" 0. (Net.Metrics.percentile (Net.Metrics.series "e") 0.5)

let metrics_merge () =
  let a = Net.Metrics.series "a" and b = Net.Metrics.series "b" in
  Net.Metrics.record a ~t:1. 10.;
  Net.Metrics.record a ~t:3. 30.;
  Net.Metrics.record b ~t:2. 20.;
  Net.Metrics.record b ~t:3. 31.;
  let m = Net.Metrics.merge a b in
  check_s "named after first" "a" (Net.Metrics.name m);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "time order, stable on ties"
    [ (1., 10.); (2., 20.); (3., 30.); (3., 31.) ]
    (Net.Metrics.points m);
  check_i "inputs untouched" 2 (Net.Metrics.count a)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "event",
        [
          Alcotest.test_case "jsonl round-trip (all variants)" `Quick
            jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick jsonl_rejects_garbage;
          Alcotest.test_case "float codec exact" `Quick json_float_exact;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "ring keeps most recent" `Quick
            ring_keeps_most_recent;
          Alcotest.test_case "jsonl sink writes lines" `Quick
            jsonl_sink_writes_lines;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters + total" `Quick registry_counters;
          Alcotest.test_case "histogram boundaries" `Quick histogram_boundaries;
          Alcotest.test_case "snapshot order + aggregate" `Quick
            snapshot_order_and_aggregate;
        ] );
      ( "trace",
        [ Alcotest.test_case "span queries" `Quick trace_queries ] );
      ( "span",
        [
          Alcotest.test_case "deterministic identity" `Quick
            span_identity_deterministic;
          Alcotest.test_case "event fold" `Quick span_of_event_fold;
          Alcotest.test_case "render_json shape" `Quick span_render_json_shape;
          Alcotest.test_case "chrome export" `Quick span_chrome_export;
          QCheck_alcotest.to_alcotest span_collector_matches_oracle;
        ] );
      ( "flight",
        [ Alcotest.test_case "dump format" `Quick flight_dump_format ] );
      ( "fleet",
        [
          Alcotest.test_case "two-node span stitching" `Quick
            two_node_stitching;
          Alcotest.test_case "trace sampling stitches sessions" `Quick
            fleet_trace_sampling;
          Alcotest.test_case "same seed, identical trace bytes" `Quick
            same_seed_identical_trace;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "convergence + lag" `Quick
            monitor_convergence_and_lag;
          Alcotest.test_case "partition heal auto-mark" `Quick
            monitor_partition_heal_automark;
          Alcotest.test_case "gossip + witness quorum" `Quick
            monitor_gossip_and_witness;
          Alcotest.test_case "divergence sampling" `Quick
            monitor_divergence_sampling;
          QCheck_alcotest.to_alcotest monitor_lag_matches_oracle;
        ] );
      ( "health",
        [
          Alcotest.test_case "report byte-stable" `Quick
            health_report_byte_stable;
          Alcotest.test_case "prometheus byte-stable" `Quick
            prometheus_byte_stable;
          Alcotest.test_case "prometheus rendering" `Quick prometheus_rendering;
        ] );
      ( "scoreboard",
        [
          Alcotest.test_case "divergence lifecycle" `Quick
            scoreboard_divergence_lifecycle;
          Alcotest.test_case "priority order" `Quick scoreboard_priority_order;
          Alcotest.test_case "renderings byte-stable" `Quick
            scoreboard_renderings_stable;
          Alcotest.test_case "prometheus export" `Quick
            scoreboard_export_prometheus;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile nearest-rank" `Quick
            metrics_percentile_nearest_rank;
          Alcotest.test_case "merge" `Quick metrics_merge;
        ] );
    ]
