(* Tests for the superpeer consensus substrate: Raft leader election, log
   replication, failover, and the replicated support blockchain. *)

open Vegvisir_net
module V = Vegvisir
module Raft = Vegvisir_cluster.Raft
module Support_cluster = Vegvisir_cluster.Support_cluster

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let mk_net n =
  let topo = Topology.clique ~n in
  (* Superpeers are servers: fast, reliable links. *)
  let link = Link.make ~base_latency_ms:5. ~bandwidth_bytes_per_ms:1000. ~jitter_ms:2. ~loss:0. () in
  (topo, Simnet.create ~topo ~link ~seed:101L)

let ids n = List.init n Fun.id

let leaders raft idlist =
  List.filter (fun id -> Raft.role_of raft id = Raft.Leader) idlist

(* ------------------------------------------------------------------ *)

let election_single_leader () =
  let _topo, net = mk_net 5 in
  let raft =
    Raft.create ~net ~ids:(ids 5) ~apply:(fun ~me:_ ~index:_ _ -> ()) ()
  in
  Raft.start raft;
  Simnet.run_until net 2_000.;
  let ls = leaders raft (ids 5) in
  check_i "exactly one leader" 1 (List.length ls);
  (* All peers agree on who it is. *)
  let l = List.hd ls in
  List.iter
    (fun id -> check_b "hint agrees" true (Raft.leader_hint raft id = Some l))
    (ids 5)

let election_terms_monotone () =
  let topo, net = mk_net 3 in
  let raft = Raft.create ~net ~ids:(ids 3) ~apply:(fun ~me:_ ~index:_ _ -> ()) () in
  Raft.start raft;
  Simnet.run_until net 2_000.;
  let l = List.hd (leaders raft (ids 3)) in
  let term_before = Raft.term_of raft l in
  (* Isolate the leader: the rest elect a new one at a higher term. *)
  Topology.set_partition topo (Some (Array.init 3 (fun i -> if i = l then 1 else 0)));
  Simnet.run_until net 5_000.;
  let others = List.filter (fun id -> id <> l) (ids 3) in
  let ls = leaders raft others in
  check_i "new leader among the majority" 1 (List.length ls);
  check_b "term grew" true (Raft.term_of raft (List.hd ls) > term_before);
  (* The deposed leader rejoins and steps down. *)
  Topology.set_partition topo None;
  Simnet.run_until net 10_000.;
  check_i "single leader after heal" 1 (List.length (leaders raft (ids 3)))

let replication_and_commit () =
  let _topo, net = mk_net 3 in
  let applied = Array.make 3 [] in
  let raft =
    Raft.create ~net ~ids:(ids 3)
      ~apply:(fun ~me ~index:_ cmd -> applied.(me) <- cmd :: applied.(me))
      ()
  in
  Raft.start raft;
  Simnet.run_until net 2_000.;
  let l = List.hd (leaders raft (ids 3)) in
  for i = 1 to 10 do
    check_b "submit accepted" true (Raft.submit raft l (Printf.sprintf "cmd-%d" i))
  done;
  check_b "follower submit refused" true
    (not (Raft.submit raft ((l + 1) mod 3) "nope"));
  Simnet.run_until net 4_000.;
  let expected = List.init 10 (fun i -> Printf.sprintf "cmd-%d" (i + 1)) in
  for id = 0 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "peer %d applied all, in order" id)
      expected
      (Raft.committed_prefix raft id);
    check_i "commit index" 10 (Raft.commit_index raft id)
  done

let committed_survive_leader_loss () =
  let topo, net = mk_net 5 in
  let raft = Raft.create ~net ~ids:(ids 5) ~apply:(fun ~me:_ ~index:_ _ -> ()) () in
  Raft.start raft;
  Simnet.run_until net 2_000.;
  let l1 = List.hd (leaders raft (ids 5)) in
  for i = 1 to 5 do
    ignore (Raft.submit raft l1 (Printf.sprintf "a-%d" i))
  done;
  Simnet.run_until net 4_000.;
  check_i "first batch committed" 5 (Raft.commit_index raft l1);
  (* Kill the leader (permanent isolation). *)
  Topology.set_partition topo (Some (Array.init 5 (fun i -> if i = l1 then 1 else 0)));
  Simnet.run_until net 10_000.;
  let rest = List.filter (fun id -> id <> l1) (ids 5) in
  let l2 = List.hd (leaders raft rest) in
  check_b "different leader" true (l2 <> l1);
  for i = 1 to 5 do
    ignore (Raft.submit raft l2 (Printf.sprintf "b-%d" i))
  done;
  Simnet.run_until net 15_000.;
  (* Every survivor has the first batch before the second (leader
     completeness + log matching). *)
  List.iter
    (fun id ->
      let prefix = Raft.committed_prefix raft id in
      check_i "all ten" 10 (List.length prefix);
      Alcotest.(check (list string))
        "a-batch precedes b-batch"
        (List.init 5 (fun i -> Printf.sprintf "a-%d" (i + 1))
        @ List.init 5 (fun i -> Printf.sprintf "b-%d" (i + 1)))
        prefix)
    rest

let minority_cannot_commit () =
  let topo, net = mk_net 5 in
  let raft = Raft.create ~net ~ids:(ids 5) ~apply:(fun ~me:_ ~index:_ _ -> ()) () in
  Raft.start raft;
  Simnet.run_until net 2_000.;
  let l = List.hd (leaders raft (ids 5)) in
  (* Partition so the old leader keeps only one follower (minority). *)
  let follower = List.hd (List.filter (fun id -> id <> l) (ids 5)) in
  Topology.set_partition topo
    (Some (Array.init 5 (fun i -> if i = l || i = follower then 0 else 1)));
  Simnet.run_until net 3_000.;
  let before = Raft.commit_index raft l in
  if Raft.role_of raft l = Raft.Leader then begin
    ignore (Raft.submit raft l "doomed");
    Simnet.run_until net 8_000.;
    check_i "minority leader cannot advance commit" before (Raft.commit_index raft l)
  end;
  (* Majority side elects and commits. *)
  let majority_side = List.filter (fun id -> id <> l && id <> follower) (ids 5) in
  Simnet.run_until net 12_000.;
  let l2 = List.hd (leaders raft majority_side) in
  ignore (Raft.submit raft l2 "winner");
  Simnet.run_until net 16_000.;
  check_b "majority committed" true (Raft.commit_index raft l2 >= 1);
  (* Heal: the doomed entry is overwritten everywhere. *)
  Topology.set_partition topo None;
  Simnet.run_until net 30_000.;
  List.iter
    (fun id ->
      check_b
        (Printf.sprintf "peer %d never applies the doomed entry" id)
        false
        (List.mem "doomed" (Raft.committed_prefix raft id));
      check_b
        (Printf.sprintf "peer %d applied the winner" id)
        true
        (List.mem "winner" (Raft.committed_prefix raft id)))
    (ids 5)

(* Randomized safety: under an adversarial schedule of partitions and
   submissions, no two replicas ever apply different commands at the same
   log index (state-machine safety), and committed prefixes agree. *)
let randomized_safety () =
  let n = 5 in
  for trial = 0 to 4 do
    let topo = Topology.clique ~n in
    let link = Link.make ~base_latency_ms:5. ~bandwidth_bytes_per_ms:1000. ~jitter_ms:2. ~loss:0.05 () in
    let net = Simnet.create ~topo ~link ~seed:(Int64.of_int (400 + trial)) in
    let raft = Raft.create ~net ~ids:(ids n) ~apply:(fun ~me:_ ~index:_ _ -> ()) () in
    Raft.start raft;
    let rng = Vegvisir_crypto.Rng.create (Int64.of_int (500 + trial)) in
    let submitted = ref 0 in
    let check_prefixes_agree () =
      let prefixes = List.map (fun id -> Raft.committed_prefix raft id) (ids n) in
      let rec agree = function
        | a :: (b :: _ as rest) ->
          let rec prefix x y =
            match (x, y) with
            | [], _ | _, [] -> true
            | hx :: tx, hy :: ty -> String.equal hx hy && prefix tx ty
          in
          check_b "prefixes agree" true (prefix a b);
          agree rest
        | _ -> ()
      in
      agree prefixes
    in
    for step = 1 to 40 do
      Simnet.run_until net (float_of_int step *. 500.);
      (match Vegvisir_crypto.Rng.int rng 4 with
      | 0 ->
        (* Random partition (possibly isolating several nodes). *)
        Topology.set_partition topo
          (Some (Array.init n (fun _ -> Vegvisir_crypto.Rng.int rng 2)))
      | 1 -> Topology.set_partition topo None
      | _ ->
        (* Submit at whoever currently claims leadership. *)
        List.iter
          (fun id ->
            if Raft.role_of raft id = Raft.Leader then begin
              incr submitted;
              ignore (Raft.submit raft id (Printf.sprintf "t%d-c%d" trial !submitted))
            end)
          (ids n));
      check_prefixes_agree ()
    done;
    (* Heal and let the cluster settle: everything committed anywhere must
       propagate to all replicas. *)
    Topology.set_partition topo None;
    Simnet.run_until net (40. *. 500. +. 30_000.);
    check_prefixes_agree ();
    let max_committed =
      List.fold_left (fun acc id -> max acc (Raft.commit_index raft id)) 0 (ids n)
    in
    List.iter
      (fun id -> check_i "all replicas caught up" max_committed (Raft.commit_index raft id))
      (ids n)
  done

(* ------------------------------------------------------------------ *)
(* Replicated support chain                                             *)

let fixture_blocks n =
  (* A chain of n Vegvisir blocks to archive. *)
  let signer = V.Signer.oracle ~signature_size:64 ~id:"sp-fixture" () in
  let cert = V.Certificate.self_signed ~signer ~role:"ca" in
  let genesis =
    V.Node.genesis_block ~signer ~cert ~timestamp:(V.Timestamp.of_ms 0L) ()
  in
  let node = V.Node.create ~signer ~cert () in
  ignore (V.Node.receive node ~now:(V.Timestamp.of_ms 1L) genesis);
  for i = 1 to n - 1 do
    ignore (V.Node.append node ~now:(V.Timestamp.of_ms (Int64.of_int (i * 10))) [])
  done;
  V.Dag.topo_order (V.Node.dag node)

let support_cluster_replicates () =
  let _topo, net = mk_net 3 in
  let cluster = Support_cluster.create ~net ~ids:(ids 3) () in
  Support_cluster.start cluster;
  Simnet.run_until net 2_000.;
  let l = Option.get (Support_cluster.leader cluster) in
  let blocks = fixture_blocks 8 in
  List.iter
    (fun b ->
      match Support_cluster.archive cluster l b with
      | `Submitted -> ()
      | `Redirect _ -> Alcotest.fail "leader redirected")
    blocks;
  (* A follower redirects. *)
  (match Support_cluster.archive cluster ((l + 1) mod 3) (List.hd blocks) with
  | `Redirect (Some hint) -> check_i "hint points at leader" l hint
  | `Redirect None -> Alcotest.fail "no hint"
  | `Submitted -> Alcotest.fail "follower accepted");
  Simnet.run_until net 5_000.;
  for id = 0 to 2 do
    check_i (Printf.sprintf "superpeer %d archived all" id) 8
      (Support_cluster.archived_count cluster id);
    check_b "chain verifies" true (V.Support.verify (Support_cluster.chain cluster id))
  done;
  check_b "identical prefixes" true (Support_cluster.identical_prefixes cluster)

let support_cluster_failover_dedupes () =
  let topo, net = mk_net 3 in
  let cluster = Support_cluster.create ~net ~ids:(ids 3) () in
  Support_cluster.start cluster;
  Simnet.run_until net 2_000.;
  let l1 = Option.get (Support_cluster.leader cluster) in
  let blocks = fixture_blocks 6 in
  let first, rest =
    match blocks with
    | a :: b :: tl -> ([ a; b ], tl)
    | _ -> assert false
  in
  List.iter (fun b -> ignore (Support_cluster.archive cluster l1 b)) first;
  Simnet.run_until net 4_000.;
  (* Leader dies; client retries the SAME blocks plus the rest at the new
     leader — dedup must keep each block once. *)
  Topology.set_partition topo (Some (Array.init 3 (fun i -> if i = l1 then 1 else 0)));
  Simnet.run_until net 10_000.;
  let survivors = List.filter (fun id -> id <> l1) (ids 3) in
  let l2 =
    List.find (fun id -> Support_cluster.is_leader cluster id) survivors
  in
  List.iter (fun b -> ignore (Support_cluster.archive cluster l2 b)) (first @ rest);
  Simnet.run_until net 20_000.;
  List.iter
    (fun id ->
      check_i
        (Printf.sprintf "superpeer %d has each block once" id)
        6
        (Support_cluster.archived_count cluster id);
      check_b "verifies" true (V.Support.verify (Support_cluster.chain cluster id)))
    survivors;
  check_b "prefixes agree" true (Support_cluster.identical_prefixes cluster)

let () =
  Alcotest.run "cluster"
    [
      ( "raft",
        [
          Alcotest.test_case "single leader" `Quick election_single_leader;
          Alcotest.test_case "terms monotone" `Quick election_terms_monotone;
          Alcotest.test_case "replication" `Quick replication_and_commit;
          Alcotest.test_case "leader loss" `Quick committed_survive_leader_loss;
          Alcotest.test_case "minority stalls" `Quick minority_cannot_commit;
          Alcotest.test_case "randomized safety" `Slow randomized_safety;
        ] );
      ( "support-cluster",
        [
          Alcotest.test_case "replicates" `Quick support_cluster_replicates;
          Alcotest.test_case "failover dedupes" `Quick support_cluster_failover_dedupes;
        ] );
    ]
